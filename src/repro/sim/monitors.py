"""Application-level monitors: latency, load, and throughput telemetry.

Heracles "continuously monitors latency and latency slack and uses both
as key inputs in its decisions" (§4.2), polling the LC application's tail
latency and load every 15 seconds — long enough to gather statistically
meaningful tails.  These monitors provide the windowed views the
controller polls and the 60-second worst-case windows the evaluation
reports ("Since the SLO is defined over 60-second windows, we report the
worst-case latency that was seen during experiments", §5.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..metrics.windows import sample_mean


class LatencyMonitor:
    """Sliding-window view of an LC service's tail latency and load."""

    def __init__(self, window_s: float = 15.0, slo_window_s: float = 60.0):
        if window_s <= 0 or slo_window_s <= 0:
            raise ValueError("windows must be positive")
        self.window_s = window_s
        self.slo_window_s = slo_window_s
        self._samples: Deque[Tuple[float, float, float]] = deque()

    def record(self, t_s: float, tail_ms: float, load: float) -> None:
        if tail_ms < 0 or load < 0:
            raise ValueError("samples must be non-negative")
        if self._samples and t_s < self._samples[-1][0]:
            raise ValueError("samples must arrive in time order")
        self._samples.append((t_s, tail_ms, load))
        horizon = max(self.window_s, self.slo_window_s) + 1.0
        while self._samples and self._samples[0][0] < t_s - horizon:
            self._samples.popleft()

    def _window(self, now_s: float, span_s: float):
        # Samples arrive in time order, so scan from the newest end and
        # stop at the cutoff instead of filtering the whole deque (the
        # deque holds the long SLO window; polls want a short suffix).
        cutoff = now_s - span_s
        out = []
        for sample in reversed(self._samples):
            if sample[0] <= cutoff:
                break
            out.append(sample)
        out.reverse()
        return out

    def observed_spacing_s(self) -> Optional[float]:
        """Spacing of the two freshest samples (the effective tick)."""
        if len(self._samples) < 2:
            return None
        spacing = self._samples[-1][0] - self._samples[-2][0]
        return spacing if spacing > 0 else None

    def poll_latency_ms(self, now_s: float) -> Optional[float]:
        """Tail latency over the control window (what PollLCAppLatency
        returns): the mean of per-interval tail estimates."""
        window = self._window(now_s, self.window_s)
        if not window:
            return None
        return sample_mean([s[1] for s in window])

    def recent_latency_ms(self, now_s: float,
                          span_s: float = 2.0) -> Optional[float]:
        """Freshest tail estimate over a short span.

        Used by the 2-second subcontroller loop, which must see the
        effect of its own last actuation before taking the next step
        (§4.3's per-step SLO check) — the 15-second control window would
        lag it into oscillation.

        The requested span is a *time* span, so its sample coverage
        depends on the tick: when samples arrive more than ``span_s``
        apart (coarse ``dt_s``), a literal cut would degenerate to the
        single latest sample and defeat the per-step averaging.  The
        effective span therefore stretches to cover at least one full
        observed sample interval — the last two samples — which is
        exactly the coverage the 2-second span gives at the historical
        1-second tick.
        """
        window = self._window(now_s, span_s)
        spacing = self.observed_spacing_s()
        if (len(window) < 2 and spacing is not None and spacing > span_s
                and now_s - self._samples[-1][0] <= spacing):
            # Coarse tick: one full interval is the freshest view that
            # still averages (the 2-sample window of the 1 s tick).
            # The freshness guard keeps the stretch out of stale polls
            # (latest sample older than one interval), which retain the
            # historical single-latest-sample fallback below.
            window = [self._samples[-2], self._samples[-1]]
        if not window:
            window = list(self._samples)[-1:]
        if not window:
            return None
        return sample_mean([s[1] for s in window])

    def poll_load(self, now_s: float) -> Optional[float]:
        """Offered load averaged over the control window."""
        window = self._window(now_s, self.window_s)
        if not window:
            return None
        return sample_mean([s[2] for s in window])

    def worst_window_ms(self, now_s: float) -> Optional[float]:
        """Worst tail estimate inside the SLO reporting window."""
        window = self._window(now_s, self.slo_window_s)
        if not window:
            return None
        return max(s[1] for s in window)

    def sample_count(self) -> int:
        return len(self._samples)


class ThroughputMonitor:
    """Accumulates BE throughput units and normalizes against a reference.

    Normalized throughput is the EMU ingredient: BE units per second
    divided by the units/second the task achieves alone on the server.
    """

    def __init__(self, reference_units_per_s: float):
        if reference_units_per_s <= 0:
            raise ValueError("reference throughput must be positive")
        self.reference_units_per_s = reference_units_per_s
        self._total_units = 0.0
        self._total_time_s = 0.0
        self._last_normalized = 0.0

    def record(self, units: float, dt_s: float) -> None:
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        if units < 0:
            raise ValueError("units must be non-negative")
        self._total_units += units
        self._total_time_s += dt_s
        self._last_normalized = (units / dt_s) / self.reference_units_per_s

    @property
    def last_normalized(self) -> float:
        """Most recent normalized throughput (instantaneous)."""
        return self._last_normalized

    def average_normalized(self) -> float:
        if self._total_time_s == 0:
            return 0.0
        return (self._total_units / self._total_time_s) / self.reference_units_per_s
