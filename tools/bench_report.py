#!/usr/bin/env python
"""Run the perf-gating benchmarks and write the BENCH_PR4.json report.

Usage: ``python tools/bench_report.py [--out BENCH_PR4.json]``

Runs the telemetry benchmark (``benchmarks/test_bench_metrics.py`` —
history-memory and summary-speed gates), the batched-backend benchmark
(``benchmarks/test_bench_batch.py`` — cluster speedup and equivalence
gates), and the sharded-fleet benchmark
(``benchmarks/test_bench_fleet.py`` — cross-plan bit-identity plus the
parallel wall-clock speedup gate); the benchmarks that emit measurement
detail as JSON are merged in.  Each suite's wall time and pass/fail
land in one report so CI can upload the perf trajectory as an artifact
run over run.

Exits non-zero if any benchmark gate fails; the report is written
either way so a failing run still leaves its numbers behind.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

#: The gating benchmarks whose wall time and verdicts the report records.
#: name -> (pytest file, extra env).  The fleet benchmark must see
#: REPRO_JOBS=0 (auto) so its sharded plan actually uses the pool.
BENCHES = (
    ("metrics", "benchmarks/test_bench_metrics.py", {}),
    ("batch", "benchmarks/test_bench_batch.py", {}),
    ("fleet", "benchmarks/test_bench_fleet.py", {"REPRO_JOBS": "0"}),
)

#: Benchmarks that write a JSON measurement detail file, keyed by the
#: environment variable naming the output path.
DETAIL_ENVS = {"metrics": "REPRO_BENCH_OUT", "fleet": "REPRO_BENCH_FLEET_OUT"}


def run_bench(path: str, extra_env: dict) -> dict:
    """Run one benchmark file under pytest; return wall time + verdict."""
    env = dict(os.environ)
    env.update(extra_env)
    env["PYTHONPATH"] = (os.path.join(ROOT, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env.setdefault("REPRO_JOBS", "1")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         path],
        cwd=ROOT, env=env, capture_output=True, text=True)
    wall_s = time.perf_counter() - start
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:] + proc.stderr[-4000:])
    return {"wall_s": round(wall_s, 2), "passed": proc.returncode == 0}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_PR4.json",
                        help="report path (default: ./BENCH_PR4.json)")
    args = parser.parse_args(argv)

    report = {"report": "BENCH_PR4", "benches": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for name, path, env in BENCHES:
            extra = dict(env)
            detail_path = None
            if name in DETAIL_ENVS:
                detail_path = os.path.join(tmp, f"{name}_detail.json")
                extra[DETAIL_ENVS[name]] = detail_path
            print(f"running {path} ...", flush=True)
            report["benches"][name] = run_bench(path, extra)
            if detail_path and os.path.exists(detail_path):
                with open(detail_path, "r", encoding="utf-8") as handle:
                    report["benches"][name].update(json.load(handle))

    report["tests_passed"] = all(b["passed"]
                                 for b in report["benches"].values())
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.out}")
    for name, bench in report["benches"].items():
        verdict = "ok" if bench["passed"] else "FAILED"
        print(f"  {name}: {verdict} in {bench['wall_s']}s")
    return 0 if report["tests_passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
