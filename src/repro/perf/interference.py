"""Composition of shared-resource contention into latency effects.

This is where a task's resolved hardware state (:class:`TaskUsage`) turns
into the two quantities performance models consume:

* a **service-time inflation factor** — frequency loss, cache misses,
  DRAM queueing, and HyperThread contention all make each request take
  longer to process; and
* a **network latency factor** — when egress bandwidth is unsatisfied,
  responses queue behind the link.

Each LC workload carries an :class:`InterferenceSensitivity` describing
how much it cares about each resource; the paper's §3.3 establishes that
these sensitivities are non-uniform and workload-dependent (memkeyval is
network- and power-sensitive, websearch is DRAM-sensitive, ...), which
is the whole reason static partitioning loses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.server import TaskUsage
from .saturation import knee_penalty


@dataclass(frozen=True)
class InterferenceSensitivity:
    """How one workload's request service time responds to contention.

    All weights are calibrated so that a task running alone with ample
    resources has every factor equal to 1.0.

    Attributes:
        freq_exponent: service time scales as (f_ref / f) ** exponent;
            1.0 for compute-bound code, lower when memory-bound phases
            hide frequency loss.
        hot_miss_weight: inflation per unit of lost *hot* working-set
            coverage (instructions + hot data — expensive to lose).
        bulk_miss_weight: inflation per unit of lost bulk coverage.
        mem_time_fraction: fraction of service time spent waiting on
            DRAM; scales the memory access-delay factor into service
            inflation.
        ht_slowdown: service inflation when the sibling HyperThread runs
            a foreign task and the core is fully busy.  SMT halves many
            core resources, so values near 1.0 (2x service time) are
            realistic for issue-bound code.
        ht_base_fraction: fraction of the HT penalty that applies even
            at low utilization (fetch/decode sharing is always on); the
            remainder scales with the task's own per-core utilization.
        ht_load_exponent: how steeply the load-dependent part of the HT
            penalty grows with utilization.
        net_tail_gain: latency blowup scale once egress is unsatisfied.
    """

    freq_exponent: float = 1.0
    hot_miss_weight: float = 1.0
    bulk_miss_weight: float = 0.3
    mem_time_fraction: float = 0.2
    ht_slowdown: float = 1.0
    ht_base_fraction: float = 0.7
    ht_load_exponent: float = 3.0
    net_tail_gain: float = 4.0

    def validate(self) -> None:
        if not 0.0 <= self.freq_exponent <= 2.0:
            raise ValueError("freq_exponent out of range")
        if self.hot_miss_weight < 0 or self.bulk_miss_weight < 0:
            raise ValueError("miss weights must be non-negative")
        if not 0.0 <= self.mem_time_fraction <= 1.0:
            raise ValueError("mem_time_fraction must be in [0, 1]")
        if self.ht_slowdown < 0 or self.net_tail_gain < 0:
            raise ValueError("slowdown/gain must be non-negative")
        if not 0.0 <= self.ht_base_fraction <= 1.0:
            raise ValueError("ht_base_fraction must be in [0, 1]")


def service_inflation(usage: TaskUsage,
                      sensitivity: InterferenceSensitivity,
                      reference_freq_ghz: float,
                      core_utilization: float) -> float:
    """Multiplier on mean request service time due to contention.

    Args:
        usage: resolved hardware state for this task this tick.
        sensitivity: the workload's interference profile.
        reference_freq_ghz: frequency the workload was calibrated at
            (nominal); running above it (Turbo) *shrinks* service time.
        core_utilization: the task's own per-core utilization (rho),
            needed because HT contention only matters on busy pipelines.

    Returns:
        Factor >= some small positive value; 1.0 means "as calibrated".
    """
    sensitivity.validate()
    if usage.freq_ghz <= 0:
        raise ValueError("frequency must be positive")
    rho = min(1.0, max(0.0, core_utilization))

    freq_factor = (reference_freq_ghz / usage.freq_ghz) ** sensitivity.freq_exponent

    # Hot-set loss is convex: the most-reused lines (inner-loop
    # instructions, root index nodes) are the last evicted and the most
    # expensive to lose, so shaving the first slice of the hot set is
    # mild while deep eviction is brutal.  Bulk loss stays linear.
    hot_loss = 1.0 - usage.hot_coverage
    cache_factor = (1.0
                    + sensitivity.hot_miss_weight * hot_loss
                    * (0.3 + 0.7 * hot_loss)
                    + sensitivity.bulk_miss_weight * (1.0 - usage.bulk_coverage))

    mem_factor = 1.0 + sensitivity.mem_time_fraction * (usage.mem_delay_factor - 1.0)

    ht_shape = (sensitivity.ht_base_fraction
                + (1.0 - sensitivity.ht_base_fraction)
                * rho ** sensitivity.ht_load_exponent)
    ht_factor = 1.0 + (sensitivity.ht_slowdown * usage.ht_share_fraction
                       * ht_shape)

    return freq_factor * cache_factor * mem_factor * ht_factor


def network_latency_factor(usage: TaskUsage,
                           sensitivity: InterferenceSensitivity,
                           link_utilization: float) -> float:
    """Latency multiplier from egress-bandwidth contention.

    Only *unsatisfied demand* matters: a task whose offered egress load
    is fully delivered sees no response queueing, no matter how busy the
    link is (this is why websearch and ml_cluster, with their low
    bandwidth needs, are untouched by the network antagonist in Fig. 1).
    Once achieved bandwidth falls below offered load, responses queue
    behind the NIC and TCP backoff compounds the damage; the quadratic
    term makes the transition knee-then-cliff, matching memkeyval's jump
    from fine to ">300%" within one load step.

    ``link_utilization`` is accepted for API completeness and future
    serialization-delay modelling; per the above it does not contribute.
    """
    del link_utilization
    if usage.net_demand_gbps <= 0:
        return 1.0
    shortfall = 1.0 - usage.net_satisfaction
    if shortfall <= 1e-9:
        return 1.0
    ratio = 1.0 / max(1e-3, usage.net_satisfaction)
    factor = (1.0 + sensitivity.net_tail_gain * (ratio - 1.0)
              + 25.0 * (ratio - 1.0) ** 2)
    return min(factor, 60.0)


def be_throughput_efficiency(usage: TaskUsage,
                             reference_freq_ghz: float,
                             mem_bound_fraction: float = 0.3,
                             cache_benefit: float = 0.3) -> float:
    """Per-core efficiency of a best-effort task relative to calibration.

    BE throughput = cores x frequency-scaling x memory/cache efficiency.
    A BE task starved of DRAM bandwidth or cache runs its cores at lower
    IPC; one capped by DVFS runs them slower outright.

    Args:
        usage: resolved hardware state.
        reference_freq_ghz: frequency at which "1.0 efficiency" holds.
        mem_bound_fraction: fraction of BE runtime stalled on memory.
        cache_benefit: throughput uplift available from full LLC coverage.

    Returns:
        Efficiency in (0, ~1.3] per core relative to calibration.
    """
    if usage.freq_ghz <= 0:
        raise ValueError("frequency must be positive")
    freq_scale = usage.freq_ghz / reference_freq_ghz
    # Achieved/demanded DRAM bandwidth throttles memory-bound progress.
    # (Bandwidth starvation is the throughput effect; queueing *delay*
    # additionally hurts latency but its throughput cost is already
    # captured by the achieved-bandwidth ratio.)
    if usage.dram_demand_gbps > 1e-9:
        mem_satisfaction = min(1.0, usage.dram_achieved_gbps / usage.dram_demand_gbps)
    else:
        mem_satisfaction = 1.0
    mem_scale = (1.0 - mem_bound_fraction) + mem_bound_fraction * mem_satisfaction
    cache_scale = 1.0 + cache_benefit * (usage.cache_hit_fraction - 1.0)
    ht_scale = 1.0 - 0.25 * usage.ht_share_fraction
    return max(1e-3, freq_scale * mem_scale * cache_scale * ht_scale)
