"""§5.3 TCO analysis table.

Paper numbers, reproduced by :class:`~repro.analysis.tco.TcoModel`:

* 75% baseline utilization raised to 90% by Heracles: ~15%
  throughput/TCO improvement (we measure ~17%);
* 20% baseline raised to 90%: ~306% (we measure ~306%);
* an energy-proportionality controller instead: ~3% at 75% baseline
  (we measure ~2%), <7% at 20% (we measure ~6.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.tco import TcoModel, TcoParameters


@dataclass
class TcoRow:
    baseline_utilization: float
    heracles_utilization: float
    heracles_gain: float
    energy_prop_gain: float


def run_tco_table(model: Optional[TcoModel] = None,
                  heracles_utilization: float = 0.90) -> List[TcoRow]:
    model = model or TcoModel()
    rows = []
    for baseline in (0.75, 0.50, 0.20):
        rows.append(TcoRow(
            baseline_utilization=baseline,
            heracles_utilization=heracles_utilization,
            heracles_gain=model.throughput_per_tco_gain(
                baseline, heracles_utilization),
            energy_prop_gain=model.energy_proportionality_gain(baseline),
        ))
    return rows


def main() -> None:
    from ..analysis.tables import render_table
    rows = run_tco_table()
    print(render_table(
        ["baseline util", "Heracles util", "Heracles tput/TCO",
         "energy-prop tput/TCO"],
        [[f"{r.baseline_utilization:.0%}",
          f"{r.heracles_utilization:.0%}",
          f"+{r.heracles_gain:.1%}",
          f"+{r.energy_prop_gain:.1%}"] for r in rows],
        title="Throughput/TCO improvements (10,000-server cluster)"))


if __name__ == "__main__":
    main()
