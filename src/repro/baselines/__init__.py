"""Baseline policies Heracles is compared against."""

from .energy_prop import EnergyProportionalController, tco_comparison
from .os_isolation import (OsIsolationPoint, os_isolation_sweep,
                           violates_everywhere)
from .static import (StaticPartitionController, conservative_static,
                     optimistic_static)

#: Scenario-selectable baseline controllers: name -> factory(actuators).
#: The scenario compiler resolves ``controller: static-*`` spec values
#: through this table, so new baselines become spec-addressable by
#: registering here.
SCENARIO_BASELINES = {
    "static-conservative": conservative_static,
    "static-optimistic": optimistic_static,
}


def baseline_for_sim(name: str, sim) -> StaticPartitionController:
    """Attach the named static baseline controller to a sim.

    Args:
        name: a key of :data:`SCENARIO_BASELINES`.
        sim: a :class:`~repro.sim.engine.ColocationSim` or batch member
            (anything with ``actuators`` and ``attach_controller``).

    Returns:
        The attached controller.
    """
    try:
        factory = SCENARIO_BASELINES[name]
    except KeyError:
        raise KeyError(f"unknown baseline {name!r}; choose from "
                       f"{', '.join(sorted(SCENARIO_BASELINES))}") from None
    controller = factory(sim.actuators)
    sim.attach_controller(controller)
    return controller


__all__ = [
    "EnergyProportionalController", "tco_comparison",
    "OsIsolationPoint", "os_isolation_sweep", "violates_everywhere",
    "StaticPartitionController", "conservative_static", "optimistic_static",
    "SCENARIO_BASELINES", "baseline_for_sim",
]
