"""Total cost of ownership model (§5.3).

Reimplements the TCO arithmetic of the paper's case study, which uses
the calculator of Barroso et al. with the low-per-server-cost
parameters: $2000 servers, PUE of 2.0, peak server power of 500 W,
electricity at $0.10/kWh, and a 10,000-server cluster.  Facility
capital expenses are provisioned per watt of peak power (the dominant
fixed cost in that model), which is why raising utilization is so much
more valuable than shaving power: the building and the servers are paid
for whether or not they do work.

The paper's headline numbers, reproduced by this module:

* a cluster at 75% average utilization raised to 90% by Heracles gains
  ~15% throughput/TCO;
* a cluster at 20% raised to 90% gains ~306%;
* an energy-proportionality controller alone gains ~3% and ~7%
  respectively.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TcoParameters:
    """Inputs to the datacenter cost model."""

    server_cost_usd: float = 2000.0
    facility_capex_per_watt: float = 10.0
    server_peak_watts: float = 500.0
    idle_power_fraction: float = 0.50  # idle power / peak power
    pue: float = 2.0
    electricity_usd_per_kwh: float = 0.10
    amortization_years: float = 3.0
    cluster_servers: int = 10_000

    def validate(self) -> None:
        if min(self.server_cost_usd, self.server_peak_watts,
               self.electricity_usd_per_kwh, self.amortization_years) <= 0:
            raise ValueError("cost-model parameters must be positive")
        if not 0.0 <= self.idle_power_fraction < 1.0:
            raise ValueError("idle fraction must be in [0, 1)")
        if self.pue < 1.0:
            raise ValueError("PUE cannot be below 1.0")
        if self.facility_capex_per_watt < 0:
            raise ValueError("facility capex cannot be negative")
        if self.cluster_servers < 1:
            raise ValueError("need at least one server")


class TcoModel:
    """Throughput/TCO arithmetic for one cluster."""

    def __init__(self, params: TcoParameters = TcoParameters()):
        params.validate()
        self.params = params

    # ------------------------------------------------------------------

    def server_power_watts(self, utilization: float) -> float:
        """Wall power of one server at a given utilization (linear
        idle-to-peak model)."""
        if not 0.0 <= utilization <= 1.2:
            raise ValueError("utilization out of modeled range")
        p = self.params
        idle = p.idle_power_fraction * p.server_peak_watts
        span = p.server_peak_watts - idle
        return idle + span * min(1.0, utilization)

    def energy_cost_usd(self, watts: float) -> float:
        """Electricity cost of a constant load over the amortization
        period, including PUE overhead."""
        p = self.params
        hours = p.amortization_years * 365.0 * 24.0
        return watts * p.pue / 1000.0 * hours * p.electricity_usd_per_kwh

    def tco_per_server_usd(self, utilization: float) -> float:
        """Capex (server + facility provisioning) + energy over the
        amortization period."""
        p = self.params
        capex = (p.server_cost_usd
                 + p.facility_capex_per_watt * p.server_peak_watts)
        return capex + self.energy_cost_usd(
            self.server_power_watts(utilization))

    def cluster_tco_usd(self, utilization: float) -> float:
        return self.tco_per_server_usd(utilization) * self.params.cluster_servers

    # ------------------------------------------------------------------

    def throughput_per_tco_gain(self, baseline_utilization: float,
                                heracles_utilization: float) -> float:
        """Relative throughput/TCO improvement from raising utilization.

        "This improvement includes the cost of the additional power
        consumption at higher utilization" (§5.3).
        """
        if baseline_utilization <= 0:
            raise ValueError("baseline utilization must be positive")
        base = baseline_utilization / self.tco_per_server_usd(
            baseline_utilization)
        new = heracles_utilization / self.tco_per_server_usd(
            heracles_utilization)
        return new / base - 1.0

    def harvest_gain(self, lc_utilization: float,
                     harvested_utilization: float) -> float:
        """Throughput/TCO gain from scheduler-harvested BE utilization.

        The fleet scheduler's feed into the cost model: a cluster
        whose LC work alone keeps servers at ``lc_utilization`` and
        whose scheduled best-effort jobs add ``harvested_utilization``
        (credited BE core-hours over total core-hours) is compared
        against the LC-only cluster, power cost of the extra
        utilization included — the §5.3 argument, with the harvested
        fraction measured instead of assumed.
        """
        if harvested_utilization < 0:
            raise ValueError("harvested utilization cannot be negative")
        return self.throughput_per_tco_gain(
            lc_utilization, lc_utilization + harvested_utilization)

    def energy_proportionality_gain(self, utilization: float,
                                    idle_savings_fraction: float = 0.5
                                    ) -> float:
        """Throughput/TCO gain from an energy-proportionality controller
        (PEGASUS-like) that recovers a fraction of the idle-power waste
        at the same utilization — the paper's comparison point.
        """
        if not 0.0 <= idle_savings_fraction <= 1.0:
            raise ValueError("savings fraction must be in [0, 1]")
        actual = self.server_power_watts(utilization)
        proportional = utilization * self.params.server_peak_watts
        saved_watts = idle_savings_fraction * max(0.0, actual - proportional)
        base_tco = self.tco_per_server_usd(utilization)
        new_tco = base_tco - self.energy_cost_usd(saved_watts)
        return base_tco / new_tco - 1.0
