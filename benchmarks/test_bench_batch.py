"""Batched vs scalar cluster backend: throughput and equivalence gate.

Runs the Figure 8 websearch minicluster — 20 leaves, one simulated hour
of the 12-hour diurnal trace, Heracles on every leaf — once on the
vectorized batched backend and once on the reference per-leaf scalar
engine, under the same seed.  Asserts the two contractual properties of
the batched backend:

* **speedup**: the batched run completes at least 5x faster;
* **equivalence**: the reported cluster metrics (mean/min EMU, max root
  SLO fraction) match the scalar path within 1e-6.

The benchmark timer records the batched run; the scalar reference is
timed inside the same test so the ratio is computed on one machine
under identical conditions.  The speedup gate compares *process CPU
time*, not wall clock: both runs are compute-bound single-process
simulations, and CPU time is immune to background load on shared CI
runners (a wall-clock gate was observed to flake when the suite ran
under load).
"""

import time

from conftest import regenerate

from repro.cluster.cluster import WebsearchCluster
from repro.workloads.traces import websearch_cluster_trace

LEAVES = 20
DURATION_S = 3600.0
SEED = 7
MIN_SPEEDUP = 5.0
METRIC_TOL = 1e-6


def _run_cluster(engine: str):
    cluster = WebsearchCluster(leaves=LEAVES,
                               trace=websearch_cluster_trace(seed=SEED),
                               seed=SEED, engine=engine)
    history = cluster.run(DURATION_S)
    return history


def test_bench_batch_cluster_speedup_and_equivalence(benchmark):
    batch_cpu = time.process_time()
    batch_history = regenerate(benchmark, _run_cluster, "batch")
    batch_elapsed = time.process_time() - batch_cpu

    scalar_cpu = time.process_time()
    scalar_history = _run_cluster("scalar")
    scalar_elapsed = time.process_time() - scalar_cpu

    speedup = scalar_elapsed / batch_elapsed
    print()
    print(f"{LEAVES}-leaf, {DURATION_S / 3600:.0f}-hour cluster: "
          f"batched {batch_elapsed:.2f}s, scalar {scalar_elapsed:.2f}s "
          f"CPU -> {speedup:.1f}x")
    metrics = [
        ("mean EMU", batch_history.mean_emu(), scalar_history.mean_emu()),
        ("min EMU", batch_history.min_emu(), scalar_history.min_emu()),
        ("max root SLO", batch_history.max_root_slo_fraction(),
         scalar_history.max_root_slo_fraction()),
    ]
    for name, got, want in metrics:
        print(f"  {name}: batched {got:.6f} scalar {want:.6f}")
        assert abs(got - want) <= METRIC_TOL, (
            f"{name} diverged: batched {got!r} vs scalar {want!r}")
    assert len(batch_history.records) == len(scalar_history.records)
    assert speedup >= MIN_SPEEDUP, (
        f"batched backend only {speedup:.2f}x faster (need "
        f">= {MIN_SPEEDUP}x)")
