"""Shard execution: one homogeneous slice of a fleet cluster.

A *shard* is a contiguous range of a cluster's leaf population, small
enough to advance as one :class:`~repro.sim.batch.BatchColocationSim`
inside a worker process.  :func:`run_shard` is the module-level
(picklable) work unit the fleet simulator fans across
:func:`repro.sim.runner.run_sweep`: it rebuilds the shard's workloads
from names, attaches real per-leaf Heracles controllers (sharing one
memoized offline DRAM model per worker process), runs the shard for
the fleet duration, and returns the per-tick leaf telemetry the fleet
aggregator rolls up.

Equivalence contract
--------------------

A shard is a *bit-identical* slice of the monolithic cluster run it
partitions: leaf ``i`` of the cluster gets the same LC instance (same
uniform leaf-SLO target from
:func:`repro.cluster.cluster.cluster_slo_targets`), the same BE task
(``be_mix[i % len(be_mix)]``), the same tail-noise seed
(``seed * 1000 + i``) and the same shared trace — all keyed by the
leaf's *global* index, never its position within the shard — and the
batched physics of a member does not depend on which other members
share its batch.  ``tests/test_fleet.py`` enforces the contract
against both the single-process batch cluster and the scalar
reference engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.leaf import make_leaf_lc
from ..core.controller import HeraclesController
from ..hardware.spec import MachineSpec
from ..obs.progress import make_heartbeat
from ..sim.batch import BatchColocationSim
from ..sim.runner import memoized_dram_model
from ..workloads.best_effort import make_be_workload
from ..workloads.traces import LoadTrace


def overlapping_seed_ranges(clusters):
    """First pair of clusters whose leaf-seed ranges collide, if any.

    Leaf ``i`` of a cluster draws tail noise from ``seed * 1000 + i``
    (the :class:`~repro.cluster.cluster.WebsearchCluster` convention,
    pinned by the bit-identity contract), so two clusters whose
    ``[seed * 1000, seed * 1000 + leaves)`` ranges overlap would share
    noise streams leaf-for-leaf and silently correlate every
    cross-cluster aggregate.  This is the one definition of that
    collision — the spec layer and the engine both validate through
    it.

    Args:
        clusters: iterable of ``(seed, leaves, name)`` tuples.

    Returns:
        The offending ``(name_a, name_b)`` pair, or ``None``.
    """
    ranges = sorted((seed * 1000, seed * 1000 + leaves, name)
                    for seed, leaves, name in clusters)
    for (_, hi_a, a), (lo_b, _, b) in zip(ranges, ranges[1:]):
        if lo_b < hi_a:
            return a, b
    return None


def partition_leaves(total: int, shard_leaves: int) -> List[Tuple[int, int]]:
    """Contiguous ``[lo, hi)`` leaf ranges of at most ``shard_leaves``.

    The population splits into ``ceil(total / shard_leaves)`` shards of
    near-equal size (the first ``total % shards`` shards take one extra
    leaf), so no worker inherits a pathologically small remainder
    shard.

    Raises:
        ValueError: for non-positive ``total`` or ``shard_leaves``.
    """
    if total <= 0:
        raise ValueError(
            f"cannot partition {total} leaves: leaf count must be positive")
    if shard_leaves <= 0:
        raise ValueError(
            f"shard_leaves={shard_leaves}: shard size must be positive "
            f"(got zero or negative)")
    shards = -(-total // shard_leaves)  # ceil division
    base, extra = divmod(total, shards)
    ranges = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker needs to run one shard (picklable).

    Args:
        cluster: owning cluster's name (aggregation key).
        cluster_index: owning cluster's position in the fleet.
        shard_index: this shard's position within the cluster.
        leaf_lo / leaf_hi: global leaf index range ``[lo, hi)``.
        total_leaves: the whole cluster's population; bounds the
            shard's leaf range (and is what SLO targets are calibrated
            from — never the shard's own size).
        lc_name: LC workload every leaf runs.
        be_mix: BE task names, assigned ``be_mix[i % len(be_mix)]`` by
            global leaf index.
        leaf_slo_ms: uniform leaf latency target (precomputed by the
            fleet from :func:`~repro.cluster.cluster.
            cluster_slo_targets`).
        spec: the cluster's machine description.
        trace: the cluster's shared offered-load trace.
        managed: attach a Heracles instance per leaf.
        seed: cluster base seed; leaf ``i`` draws noise from
            ``seed * 1000 + i``.
        duration_s / dt_s: run length and tick size.
        collect_be: additionally record per-leaf BE telemetry
            (normalized BE throughput and Heracles-granted BE cores)
            each tick — the slack signals the fleet scheduler consumes.
            Off by default: plain fleet runs pay nothing for the hook.
        events: chaos schedule for this shard
            (:class:`~repro.sim.chaos.ChaosEvent` tuples), with member
            targets already rebased to shard-local indices by the
            fleet's task builder.
        checkpoint_path / checkpoint_at_s: snapshot the shard's full
            state (engine pickle + collected telemetry prefix) to this
            archive after the tick reaching ``checkpoint_at_s``.
        resume_path: restore such an archive and continue from the
            saved tick instead of building the shard from scratch;
            results are bit-identical to the uninterrupted run.
        spill_dir: bound the shard engine's resident history memory by
            chunked spill-to-disk under this (shard-private) directory.
        member_base: fleet-global index of this cluster's leaf 0
            (cumulative leaf count of the preceding cluster plans);
            decision-trace events report ``member_base + leaf_index``
            so merged traces are invariant under any shard partition.
    """

    cluster: str
    cluster_index: int
    shard_index: int
    leaf_lo: int
    leaf_hi: int
    total_leaves: int
    lc_name: str
    be_mix: Tuple[str, ...]
    leaf_slo_ms: float
    spec: MachineSpec
    trace: LoadTrace
    managed: bool
    seed: int
    duration_s: float
    dt_s: float
    collect_be: bool = False
    events: Tuple = ()
    checkpoint_path: "Optional[str]" = None
    checkpoint_at_s: "Optional[float]" = None
    resume_path: "Optional[str]" = None
    spill_dir: "Optional[str]" = None
    member_base: int = 0

    @property
    def leaves(self) -> int:
        """Number of leaves in this shard."""
        return self.leaf_hi - self.leaf_lo


@dataclass
class ShardResult:
    """One shard's run: per-tick leaf telemetry plus its own summary.

    ``tails_ms`` and ``emus`` are ``(T, leaves)`` float64 arrays in
    global leaf order; ``times_s`` is the shared ``(T,)`` tick clock.
    ``summary`` holds the shard-local aggregates (mean EMU, worst leaf
    tail) the fleet reports per shard — and which the differential
    benchmark pins bit-identical across execution plans.

    ``be_norm`` and ``be_cores`` are the scheduler's slack signals —
    per-tick normalized BE throughput and Heracles-granted BE cores per
    leaf, also ``(T, leaves)``.  They are empty ``(0, 0)`` arrays
    unless the task asked for them (``collect_be=True``).

    ``trace`` and ``profile`` carry the shard's decision-trace payload
    (:meth:`repro.obs.trace.TraceSink.payload` columns, fleet-global
    member indices) and tick-phase wall-clock breakdown; both are
    ``None`` unless the run enabled the corresponding observability
    toggle.  The fleet layer merges them across shards and drops them
    from the stripped records.
    """

    cluster: str
    cluster_index: int
    shard_index: int
    leaf_lo: int
    leaf_hi: int
    times_s: np.ndarray
    tails_ms: np.ndarray
    emus: np.ndarray
    summary: Dict[str, float]
    be_norm: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0)))
    be_cores: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 0)))
    trace: Optional[Dict[str, np.ndarray]] = None
    profile: Optional[Dict[str, float]] = None

    def stripped(self) -> "ShardResult":
        """A summary-only copy with the bulk telemetry dropped.

        The fleet roll-up consumes the (T, n) arrays once and then
        keeps only this stripped record per shard — a full-fidelity
        1000-leaf 12-hour run would otherwise pin ~0.7 GB of raw leaf
        telemetry inside the result object for its whole lifetime.
        """
        empty = np.zeros(0)
        return ShardResult(
            cluster=self.cluster, cluster_index=self.cluster_index,
            shard_index=self.shard_index, leaf_lo=self.leaf_lo,
            leaf_hi=self.leaf_hi, times_s=empty,
            tails_ms=empty.reshape(0, 0), emus=empty.reshape(0, 0),
            summary=dict(self.summary))


def run_shard(task: ShardTask) -> ShardResult:
    """Run one shard to completion (the picklable pool work unit).

    Builds the shard's slice of the cluster exactly as
    :class:`~repro.cluster.cluster.WebsearchCluster` builds the whole
    population — shared LC instance, one BE instance per task name,
    per-leaf seeds from the global leaf index — and advances it
    tick-for-tick, recording every leaf's tail latency and EMU.
    """
    if task.duration_s <= 0:
        raise ValueError("duration must be positive")
    if task.dt_s <= 0:
        raise ValueError("dt must be positive")
    n = task.leaves
    if n <= 0:
        raise ValueError(f"shard [{task.leaf_lo}, {task.leaf_hi}) is empty")
    if task.leaf_lo < 0 or task.leaf_hi > task.total_leaves:
        raise ValueError(
            f"shard [{task.leaf_lo}, {task.leaf_hi}) falls outside the "
            f"cluster's {task.total_leaves}-leaf population")
    steps = int(round(task.duration_s / task.dt_s))
    k0 = 0
    if task.resume_path is not None:
        from ..sim.checkpoint import CheckpointError, load_engine
        restored = load_engine(task.resume_path, expect_kind="shard")
        meta = restored.meta
        mismatch = [
            what for what, got, want in (
                ("cluster", meta.get("cluster"), task.cluster),
                ("shard_index", meta.get("shard_index"),
                 task.shard_index),
                ("leaf range", (meta.get("leaf_lo"), meta.get("leaf_hi")),
                 (task.leaf_lo, task.leaf_hi)),
                ("dt_s", meta.get("dt_s"), task.dt_s),
                ("collect_be", bool(meta.get("collect_be")),
                 bool(task.collect_be)),
            ) if got != want]
        if mismatch:
            raise CheckpointError(
                f"{task.resume_path}: checkpoint does not match this "
                f"shard task (differs in {', '.join(mismatch)})")
        k0 = int(meta["steps_done"])
        if k0 > steps:
            raise CheckpointError(
                f"{task.resume_path}: holds {k0} completed ticks but "
                f"the resumed run is only {steps} ticks long")
        batch = restored.sim
    else:
        spec = task.spec
        lc = make_leaf_lc(spec, task.leaf_slo_ms, lc_name=task.lc_name)
        be_names = [task.be_mix[i % len(task.be_mix)]
                    for i in range(task.leaf_lo, task.leaf_hi)]
        be_by_name = {name: make_be_workload(name, spec)
                      for name in sorted(set(be_names))}
        batch = BatchColocationSim(
            lc=lc, trace=task.trace,
            bes=[be_by_name[name] for name in be_names],
            spec=spec,
            seeds=[task.seed * 1000 + i
                   for i in range(task.leaf_lo, task.leaf_hi)],
            record_history=False,
            spill_dir=task.spill_dir)
        if task.events:
            batch.set_chaos_events(task.events)
        if task.managed:
            # One offline model per (LC, machine) pair per worker
            # process; profiling is deterministic, so every process
            # derives the same model the monolithic cluster would share
            # across its leaves.
            model = memoized_dram_model(task.lc_name, spec)
            for member in batch.members:
                HeraclesController.for_sim(member, dram_model=model)
    # Fleet-global member indices for the decision trace — keyed by the
    # leaf's global index like everything else in the shard, so the
    # merged trace is invariant under the shard partition.  Re-stamped
    # on restored engines too (cheap, and the map is this run's).
    batch.obs_set_members(
        task.member_base + np.arange(task.leaf_lo, task.leaf_hi))

    k_save = None
    if task.checkpoint_path is not None and task.checkpoint_at_s is not None:
        from ..sim.checkpoint import checkpoint_step
        k_save = checkpoint_step(task.checkpoint_at_s, task.duration_s,
                                 task.dt_s)
    times = np.empty(steps)
    tails = np.empty((steps, n))
    emus = np.empty((steps, n))
    if task.collect_be:
        be_norm = np.empty((steps, n))
        be_cores = np.empty((steps, n))
    else:
        be_norm = be_cores = np.zeros((0, 0))
    heartbeat = make_heartbeat(
        f"{task.cluster}/shard{task.shard_index}", steps)
    if k0:
        times[:k0] = restored.arrays["times"]
        tails[:k0] = restored.arrays["tails"]
        emus[:k0] = restored.arrays["emus"]
        if task.collect_be:
            be_norm[:k0] = restored.arrays["be_norm"]
            # be_cores lands one tick late (see the loop below), so the
            # checkpoint carries one row fewer; resuming tick k0
            # rewrites row k0-1 from the restored actuator state.
            be_cores[:k0 - 1] = restored.arrays["be_cores"]
    for k in range(k0, steps):
        result = batch.tick(task.dt_s)
        times[k] = result.t_s
        tails[k] = result.tail_latency_ms
        emus[k] = result.emu
        if task.collect_be:
            be_norm[k] = result.be_throughput_norm
            # The recorded grant is the post-controller-step state —
            # what the next tick will actually run with, the same state
            # a cluster scheduler would poll from Heracles.  Tick k+1's
            # actuator gather *is* that state for tick k, so each row
            # lands one tick later as a vectorized copy instead of a
            # per-member property loop on every tick.
            if k:
                be_cores[k - 1] = batch._gathered_be_cores
        if k_save is not None and k + 1 == k_save:
            from ..sim.checkpoint import save_engine
            done = k + 1
            arrays = {"times": times[:done], "tails": tails[:done],
                      "emus": emus[:done]}
            if task.collect_be:
                arrays["be_norm"] = be_norm[:done]
                # Row done-1 is unwritten until tick done gathers it;
                # save the rows that exist and let the resumed tick
                # rewrite the gap deterministically.
                arrays["be_cores"] = be_cores[:done - 1]
            save_engine(
                batch, task.checkpoint_path, kind="shard", arrays=arrays,
                extra_meta={"steps_done": done, "cluster": task.cluster,
                            "shard_index": task.shard_index,
                            "leaf_lo": task.leaf_lo,
                            "leaf_hi": task.leaf_hi,
                            "dt_s": task.dt_s,
                            "collect_be": bool(task.collect_be)})
        if heartbeat is not None:
            heartbeat.beat(k + 1)
    if steps and task.collect_be:
        # The final row has no following tick to gather it; one direct
        # (single, not per-tick) actuator read closes the shift.
        be_cores[steps - 1] = batch.be_cores_now()
    if steps:
        summary = {
            "mean_emu": float(emus.mean()),
            "min_emu": float(emus.min()),
            "worst_tail_ms": float(tails.max()),
            "mean_tail_ms": float(tails.mean()),
        }
    else:
        # duration_s / dt_s rounded to zero ticks: an empty run, like
        # the cluster driver's, reporting the metric layer's
        # nothing-recorded value (0.0) instead of crashing on empty
        # reductions.
        summary = {"mean_emu": 0.0, "min_emu": 0.0,
                   "worst_tail_ms": 0.0, "mean_tail_ms": 0.0}
    return ShardResult(
        cluster=task.cluster, cluster_index=task.cluster_index,
        shard_index=task.shard_index, leaf_lo=task.leaf_lo,
        leaf_hi=task.leaf_hi, times_s=times, tails_ms=tails, emus=emus,
        summary=summary, be_norm=be_norm, be_cores=be_cores,
        trace=(batch._obs_trace.payload()
               if batch._obs_trace is not None else None),
        profile=(batch._obs_prof.as_dict()
                 if batch._obs_prof is not None else None))
