"""Typed scenario specifications.

A *scenario* is a declarative description of a colocation experiment —
which hardware, which workloads, which load traces, which controller,
what to sweep, and what to inject mid-run.  Specs are plain frozen
dataclasses built from dicts (hand-written, loaded from JSON/YAML
files, or constructed in code); :mod:`repro.scenarios.compiler` lowers
a validated spec onto the engine/batch/runner stack.

Every ``from_dict`` constructor rejects unknown fields and validates
values eagerly, so a typo'd spec fails at load time with a message
naming the offending field — never as a silent default deep inside a
multi-hour run.

The schema is documented field-by-field in ``docs/scenarios.md``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..hardware.spec import MachineSpec, default_machine_spec
from ..workloads.best_effort import BE_PROFILES
from ..workloads.latency_critical import LC_PROFILES
from ..workloads.traces import (ConstantLoad, DiurnalTrace, LoadSpike,
                                LoadTrace, PhasedTrace, ReplayTrace,
                                SpikeOverlay, StepLoad)

#: Controllers a scenario (or a member) may select.
CONTROLLERS = ("heracles", "none", "static-conservative",
               "static-optimistic")

#: Execution backends.  ``auto`` picks scalar for a single member and
#: batch for multi-member scenarios.
ENGINES = ("auto", "scalar", "batch")

#: Mid-run injection actions (see :class:`InjectionSpec`).  The first
#: five are per-member actuator pokes; the last five are *chaos* events
#: resolved inside the engines (see :mod:`repro.sim.chaos`).
INJECTION_ACTIONS = ("enable_be", "disable_be", "set_be_cores",
                     "set_llc_split", "set_be_net_ceil",
                     "leaf_crash", "leaf_restart", "straggler",
                     "power_cap", "partition")

#: The subset of :data:`INJECTION_ACTIONS` lowered to engine-level
#: chaos events (masked column updates) rather than actuator calls.
CHAOS_ACTIONS = ("leaf_crash", "leaf_restart", "straggler", "power_cap",
                 "partition")


class ScenarioError(ValueError):
    """A scenario spec failed to load or validate."""


def _require_mapping(data: Any, ctx: str) -> Mapping[str, Any]:
    """Validate that ``data`` is a string-keyed mapping."""
    if not isinstance(data, Mapping) or not all(
            isinstance(k, str) for k in data):
        raise ScenarioError(f"{ctx}: expected a mapping of field names, "
                            f"got {type(data).__name__}")
    return data


def _reject_unknown(data: Mapping[str, Any], allowed: Tuple[str, ...],
                    ctx: str) -> None:
    """Raise :class:`ScenarioError` naming any field not in ``allowed``."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"{ctx}: unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed fields: {', '.join(sorted(allowed))}")


def _number(value: Any, ctx: str) -> float:
    """Coerce an int/float (but not bool) to float, or fail."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{ctx}: expected a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class ServerSpec:
    """Hardware overrides applied to the paper's default server.

    Every field is optional; ``None`` keeps the corresponding value of
    :func:`repro.hardware.spec.default_machine_spec` (the dual-socket
    Haswell-class machine).  The composed :class:`MachineSpec` is
    validated, so inconsistent overrides (e.g. one LLC way) fail at
    spec-build time.
    """

    sockets: Optional[int] = None
    cores: Optional[int] = None
    threads_per_core: Optional[int] = None
    llc_mb: Optional[float] = None
    llc_ways: Optional[int] = None
    dram_bw_gbps: Optional[float] = None
    tdp_watts: Optional[float] = None
    idle_watts: Optional[float] = None
    link_gbps: Optional[float] = None
    nominal_ghz: Optional[float] = None
    max_turbo_ghz: Optional[float] = None
    all_core_turbo_ghz: Optional[float] = None
    min_ghz: Optional[float] = None

    _FIELDS = ("sockets", "cores", "threads_per_core", "llc_mb", "llc_ways",
               "dram_bw_gbps", "tdp_watts", "idle_watts", "link_gbps",
               "nominal_ghz", "max_turbo_ghz", "all_core_turbo_ghz",
               "min_ghz")
    _INT_FIELDS = ("sockets", "cores", "threads_per_core", "llc_ways")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "server") -> "ServerSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if value is None:
                continue
            if name in cls._INT_FIELDS:
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ScenarioError(f"{ctx}.{name}: expected an "
                                        f"integer, got {value!r}")
                kwargs[name] = value
            else:
                kwargs[name] = _number(value, f"{ctx}.{name}")
        return cls(**kwargs)

    def is_default(self) -> bool:
        """True when no override is set (the paper's stock server)."""
        return all(getattr(self, name) is None for name in self._FIELDS)

    def to_machine_spec(self) -> MachineSpec:
        """Compose the overrides onto the default machine and validate."""
        base = default_machine_spec()
        turbo_over = {k: v for k, v in (
            ("nominal_ghz", self.nominal_ghz),
            ("max_turbo_ghz", self.max_turbo_ghz),
            ("all_core_turbo_ghz", self.all_core_turbo_ghz),
            ("min_ghz", self.min_ghz)) if v is not None}
        socket_over = {k: v for k, v in (
            ("cores", self.cores),
            ("threads_per_core", self.threads_per_core),
            ("llc_mb", self.llc_mb),
            ("llc_ways", self.llc_ways),
            ("dram_bw_gbps", self.dram_bw_gbps),
            ("tdp_watts", self.tdp_watts),
            ("idle_watts", self.idle_watts)) if v is not None}
        socket = base.socket
        if turbo_over:
            socket = dataclasses.replace(
                socket, turbo=dataclasses.replace(socket.turbo, **turbo_over))
        if socket_over:
            socket = dataclasses.replace(socket, **socket_over)
        machine_over: Dict[str, Any] = {"socket": socket}
        if self.sockets is not None:
            machine_over["sockets"] = self.sockets
        if self.link_gbps is not None:
            machine_over["nic"] = dataclasses.replace(
                base.nic, link_gbps=self.link_gbps)
        spec = dataclasses.replace(base, **machine_over)
        try:
            spec.validate()
        except ValueError as exc:
            raise ScenarioError(f"server: invalid hardware override "
                                f"({exc})") from exc
        return spec


@dataclass(frozen=True)
class SpikeSpec:
    """One injected load spike (see :class:`~repro.workloads.traces.
    LoadSpike`): hold ``load`` from ``at_s`` for ``duration_s``."""

    at_s: float
    duration_s: float
    load: float

    _FIELDS = ("at_s", "duration_s", "load")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "spike") -> "SpikeSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        for name in cls._FIELDS:
            if name not in data:
                raise ScenarioError(f"{ctx}: missing required field "
                                    f"{name!r}")
        spike = cls(at_s=_number(data["at_s"], f"{ctx}.at_s"),
                    duration_s=_number(data["duration_s"],
                                       f"{ctx}.duration_s"),
                    load=_number(data["load"], f"{ctx}.load"))
        spike.validate(ctx)
        return spike

    def validate(self, ctx: str = "spike") -> None:
        """Check value ranges (delegates to :class:`LoadSpike`)."""
        try:
            LoadSpike(self.at_s, self.duration_s, self.load)
        except ValueError as exc:
            raise ScenarioError(f"{ctx}: {exc}") from exc

    def to_load_spike(self) -> LoadSpike:
        """Convert to the workload layer's :class:`LoadSpike`."""
        return LoadSpike(at_s=self.at_s, duration_s=self.duration_s,
                         load=self.load)


#: Allowed fields per trace kind (beyond ``kind`` and ``spikes``).
_TRACE_KIND_FIELDS = {
    "constant": ("load",),
    "diurnal": ("low", "high", "period_s", "noise_sigma", "seed"),
    "step": ("times_s", "loads"),
    "replay": ("samples", "interval_s"),
}


@dataclass(frozen=True)
class TraceSpec:
    """Declarative load trace: a kind plus its parameters.

    Kinds mirror :mod:`repro.workloads.traces`: ``constant`` (fields
    ``load``), ``diurnal`` (``low``, ``high``, ``period_s``,
    ``noise_sigma``, ``seed``), ``step`` (``times_s``, ``loads``) and
    ``replay`` (``samples``, ``interval_s``).  Any kind accepts a
    ``spikes`` list (spikes overlay the base trace via
    :class:`~repro.workloads.traces.SpikeOverlay`) and a ``phase_s``
    offset, which evaluates the base trace ``phase_s`` seconds ahead
    — the follow-the-sun primitive for fleet scenarios.  Spikes fire
    at simulation time, unaffected by the phase shift.
    """

    kind: str = "constant"
    load: float = 0.5
    low: float = 0.20
    high: float = 0.90
    period_s: float = 12 * 3600.0
    noise_sigma: float = 0.0
    seed: Optional[int] = None
    times_s: Tuple[float, ...] = ()
    loads: Tuple[float, ...] = ()
    samples: Tuple[float, ...] = ()
    interval_s: float = 1.0
    spikes: Tuple[SpikeSpec, ...] = ()
    phase_s: float = 0.0

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "trace") -> "TraceSpec":
        """Build from a mapping; fields must match the trace ``kind``."""
        data = _require_mapping(data, ctx)
        kind = data.get("kind", "constant")
        if kind not in _TRACE_KIND_FIELDS:
            raise ScenarioError(
                f"{ctx}.kind: unknown trace kind {kind!r}; choose from "
                f"{', '.join(sorted(_TRACE_KIND_FIELDS))}")
        allowed = ("kind", "spikes", "phase_s") + _TRACE_KIND_FIELDS[kind]
        _reject_unknown(data, allowed, ctx)
        kwargs: Dict[str, Any] = {"kind": kind}
        if "phase_s" in data:
            kwargs["phase_s"] = _number(data["phase_s"], f"{ctx}.phase_s")
        for name in _TRACE_KIND_FIELDS[kind]:
            if name not in data:
                continue
            value = data[name]
            if name == "seed":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ScenarioError(f"{ctx}.seed: expected an integer, "
                                        f"got {value!r}")
                kwargs[name] = value
            elif name in ("times_s", "loads", "samples"):
                if not isinstance(value, (list, tuple)):
                    raise ScenarioError(f"{ctx}.{name}: expected a list, "
                                        f"got {value!r}")
                kwargs[name] = tuple(
                    _number(v, f"{ctx}.{name}[{i}]")
                    for i, v in enumerate(value))
            else:
                kwargs[name] = _number(value, f"{ctx}.{name}")
        raw_spikes = data.get("spikes", ())
        if not isinstance(raw_spikes, (list, tuple)):
            raise ScenarioError(f"{ctx}.spikes: expected a list, got "
                                f"{raw_spikes!r}")
        kwargs["spikes"] = tuple(
            SpikeSpec.from_dict(s, f"{ctx}.spikes[{i}]")
            for i, s in enumerate(raw_spikes))
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "trace") -> None:
        """Validate by building the trace (traces self-validate)."""
        try:
            self.build(default_seed=0)
        except ScenarioError:
            raise
        except ValueError as exc:
            raise ScenarioError(f"{ctx}: {exc}") from exc

    def build(self, default_seed: int = 0) -> LoadTrace:
        """Construct the concrete :class:`LoadTrace`.

        Args:
            default_seed: seed for stochastic kinds when the spec does
                not pin one.

        Returns:
            The base trace, wrapped in :class:`SpikeOverlay` when the
            spec lists spikes.
        """
        if self.kind == "constant":
            base: LoadTrace = ConstantLoad(self.load)
        elif self.kind == "diurnal":
            seed = self.seed if self.seed is not None else default_seed
            base = DiurnalTrace(low=self.low, high=self.high,
                                period_s=self.period_s,
                                noise_sigma=self.noise_sigma, seed=seed)
        elif self.kind == "step":
            base = StepLoad(times_s=list(self.times_s),
                            loads=list(self.loads))
        elif self.kind == "replay":
            base = ReplayTrace(samples=list(self.samples),
                               interval_s=self.interval_s)
        else:  # pragma: no cover - from_dict rejects unknown kinds
            raise ScenarioError(f"unknown trace kind {self.kind!r}")
        if self.phase_s:
            base = PhasedTrace(base, self.phase_s)
        if self.spikes:
            return SpikeOverlay(base,
                                [s.to_load_spike() for s in self.spikes])
        return base


@dataclass(frozen=True)
class WorkloadSpec:
    """One colocation member: an LC service plus an optional BE task.

    Args:
        lc: LC workload name (``websearch``, ``ml_cluster``,
            ``memkeyval``).
        be: BE task name (``brain``, ``streetview``, ``stream-LLC``,
            ``stream-DRAM``, ``cpu_pwr``, ``iperf``) or ``None`` for an
            LC-only member.
        trace: the member's offered-load trace.
        seed: tail-noise RNG seed; ``None`` derives ``scenario.seed +
            member index`` so fleet members decorrelate by default.
        controller: per-member override of the scenario controller.
    """

    lc: str
    be: Optional[str] = None
    trace: TraceSpec = field(default_factory=TraceSpec)
    seed: Optional[int] = None
    controller: Optional[str] = None

    _FIELDS = ("lc", "be", "trace", "seed", "controller")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "member") -> "WorkloadSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        if "lc" not in data:
            raise ScenarioError(f"{ctx}: missing required field 'lc'")
        kwargs: Dict[str, Any] = {"lc": data["lc"], "be": data.get("be")}
        if "trace" in data:
            kwargs["trace"] = TraceSpec.from_dict(data["trace"],
                                                  f"{ctx}.trace")
        if data.get("seed") is not None:
            seed = data["seed"]
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ScenarioError(f"{ctx}.seed: expected an integer, "
                                    f"got {seed!r}")
            kwargs["seed"] = seed
        if data.get("controller") is not None:
            kwargs["controller"] = data["controller"]
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "member") -> None:
        """Check workload names and the controller override."""
        if self.lc not in LC_PROFILES:
            raise ScenarioError(
                f"{ctx}.lc: unknown LC workload {self.lc!r}; choose from "
                f"{', '.join(sorted(LC_PROFILES))}")
        if self.be is not None and self.be not in BE_PROFILES:
            raise ScenarioError(
                f"{ctx}.be: unknown BE workload {self.be!r}; choose from "
                f"{', '.join(sorted(BE_PROFILES))}")
        if self.controller is not None and self.controller not in CONTROLLERS:
            raise ScenarioError(
                f"{ctx}.controller: unknown controller "
                f"{self.controller!r}; choose from {', '.join(CONTROLLERS)}")
        self.trace.validate(f"{ctx}.trace")


@dataclass(frozen=True)
class SweepSpec:
    """A (LC task x BE task x load) grid, fanned across the runner.

    Each cell is one independent constant-load colocation run (the
    Figure 4-7 methodology); cells are dispatched through
    :func:`repro.sim.runner.run_sweep`.
    """

    lc_tasks: Tuple[str, ...] = ("websearch",)
    be_tasks: Tuple[str, ...] = ("brain",)
    loads: Tuple[float, ...] = (0.25, 0.50, 0.75)
    include_baseline: bool = True

    _FIELDS = ("lc_tasks", "be_tasks", "loads", "include_baseline")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "sweep") -> "SweepSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        kwargs: Dict[str, Any] = {}
        for name in ("lc_tasks", "be_tasks"):
            if name in data:
                value = data[name]
                if (not isinstance(value, (list, tuple))
                        or not all(isinstance(v, str) for v in value)):
                    raise ScenarioError(f"{ctx}.{name}: expected a list of "
                                        f"names, got {value!r}")
                kwargs[name] = tuple(value)
        if "loads" in data:
            value = data["loads"]
            if not isinstance(value, (list, tuple)):
                raise ScenarioError(f"{ctx}.loads: expected a list, got "
                                    f"{value!r}")
            kwargs["loads"] = tuple(_number(v, f"{ctx}.loads[{i}]")
                                    for i, v in enumerate(value))
        if "include_baseline" in data:
            if not isinstance(data["include_baseline"], bool):
                raise ScenarioError(f"{ctx}.include_baseline: expected a "
                                    f"bool, got {data['include_baseline']!r}")
            kwargs["include_baseline"] = data["include_baseline"]
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "sweep") -> None:
        """Check axis names and load ranges."""
        if not self.lc_tasks or not self.be_tasks or not self.loads:
            raise ScenarioError(f"{ctx}: lc_tasks, be_tasks and loads must "
                                f"all be non-empty")
        for name in self.lc_tasks:
            if name not in LC_PROFILES:
                raise ScenarioError(
                    f"{ctx}.lc_tasks: unknown LC workload {name!r}; choose "
                    f"from {', '.join(sorted(LC_PROFILES))}")
        for name in self.be_tasks:
            if name not in BE_PROFILES:
                raise ScenarioError(
                    f"{ctx}.be_tasks: unknown BE workload {name!r}; choose "
                    f"from {', '.join(sorted(BE_PROFILES))}")
        for load in self.loads:
            if not 0.0 < load <= 1.0:
                raise ScenarioError(f"{ctx}.loads: load {load!r} outside "
                                    f"(0, 1]")


@dataclass(frozen=True)
class ClusterSpec:
    """A websearch minicluster run (the §5.3 / Figure 8 shape).

    Arms (``managed`` = Heracles on every leaf, ``baseline`` = no
    colocation) are independent simulations fanned across the runner.
    """

    leaves: int = 8
    arms: Tuple[str, ...] = ("managed", "baseline")
    trace: TraceSpec = field(default_factory=lambda: TraceSpec(
        kind="diurnal", low=0.20, high=0.90, period_s=12 * 3600.0,
        noise_sigma=0.02))
    engine: str = "batch"

    _FIELDS = ("leaves", "arms", "trace", "engine")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "cluster") -> "ClusterSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        kwargs: Dict[str, Any] = {}
        if "leaves" in data:
            leaves = data["leaves"]
            if isinstance(leaves, bool) or not isinstance(leaves, int):
                raise ScenarioError(f"{ctx}.leaves: expected an integer, "
                                    f"got {leaves!r}")
            kwargs["leaves"] = leaves
        if "arms" in data:
            arms = data["arms"]
            if (not isinstance(arms, (list, tuple))
                    or not all(isinstance(a, str) for a in arms)):
                raise ScenarioError(f"{ctx}.arms: expected a list of arm "
                                    f"names, got {arms!r}")
            kwargs["arms"] = tuple(arms)
        if "trace" in data:
            kwargs["trace"] = TraceSpec.from_dict(data["trace"],
                                                  f"{ctx}.trace")
        if "engine" in data:
            kwargs["engine"] = data["engine"]
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "cluster") -> None:
        """Check leaf count, arm names and the engine choice."""
        if self.leaves < 2:
            raise ScenarioError(f"{ctx}.leaves: a cluster needs at least "
                                f"two leaves")
        if not self.arms:
            raise ScenarioError(f"{ctx}.arms: need at least one arm")
        for arm in self.arms:
            if arm not in ("managed", "baseline"):
                raise ScenarioError(f"{ctx}.arms: unknown arm {arm!r}; "
                                    f"choose from managed, baseline")
        if self.engine not in ("batch", "scalar"):
            raise ScenarioError(f"{ctx}.engine: unknown engine "
                                f"{self.engine!r}; choose batch or scalar")
        self.trace.validate(f"{ctx}.trace")


@dataclass(frozen=True)
class ShardSpec:
    """One homogeneous cluster of a fleet scenario.

    A fleet is a set of these: each declares one homogeneous leaf
    population — its own hardware, LC service, BE mix, and
    (phase-shifted) trace — which the fleet simulator partitions into
    execution shards of at most ``fleet.shard_leaves`` leaves.

    Args:
        name: unique cluster name within the fleet.
        leaves: leaf population (at least 2; zero or negative counts
            are rejected at load time).
        lc: LC workload every leaf runs.
        be_mix: BE task names, cycled across leaves by global index
            (the default matches §5.3's brain/streetview alternation).
        server: hardware overrides for this cluster's machines.
        trace: the cluster's shared offered-load trace.
        managed: run Heracles on every leaf (``false`` = baseline).
        seed: cluster base seed; ``None`` derives
            ``scenario.seed + cluster index``.
    """

    name: str
    leaves: int
    lc: str = "websearch"
    be_mix: Tuple[str, ...] = ("brain", "streetview")
    server: ServerSpec = field(default_factory=ServerSpec)
    trace: TraceSpec = field(default_factory=lambda: TraceSpec(
        kind="diurnal", low=0.20, high=0.90, period_s=12 * 3600.0,
        noise_sigma=0.02))
    managed: bool = True
    seed: Optional[int] = None

    _FIELDS = ("name", "leaves", "lc", "be_mix", "server", "trace",
               "managed", "seed")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "cluster") -> "ShardSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        for required in ("name", "leaves"):
            if required not in data:
                raise ScenarioError(f"{ctx}: missing required field "
                                    f"{required!r}")
        if not isinstance(data["name"], str) or not data["name"]:
            raise ScenarioError(f"{ctx}.name: expected a non-empty string")
        leaves = data["leaves"]
        if isinstance(leaves, bool) or not isinstance(leaves, int):
            raise ScenarioError(f"{ctx}.leaves: expected an integer, got "
                                f"{leaves!r}")
        kwargs: Dict[str, Any] = {"name": data["name"], "leaves": leaves}
        if "lc" in data:
            kwargs["lc"] = data["lc"]
        if "be_mix" in data:
            mix = data["be_mix"]
            if (not isinstance(mix, (list, tuple))
                    or not all(isinstance(b, str) for b in mix)):
                raise ScenarioError(f"{ctx}.be_mix: expected a list of BE "
                                    f"task names, got {mix!r}")
            kwargs["be_mix"] = tuple(mix)
        if "server" in data:
            kwargs["server"] = ServerSpec.from_dict(data["server"],
                                                    f"{ctx}.server")
        if "trace" in data:
            kwargs["trace"] = TraceSpec.from_dict(data["trace"],
                                                  f"{ctx}.trace")
        if "managed" in data:
            if not isinstance(data["managed"], bool):
                raise ScenarioError(f"{ctx}.managed: expected a bool, got "
                                    f"{data['managed']!r}")
            kwargs["managed"] = data["managed"]
        if data.get("seed") is not None:
            seed = data["seed"]
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ScenarioError(f"{ctx}.seed: expected an integer, got "
                                    f"{seed!r}")
            kwargs["seed"] = seed
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "cluster") -> None:
        """Check leaf count, workload names, hardware, and the trace."""
        if self.leaves < 2:
            raise ScenarioError(
                f"{ctx}.leaves: got {self.leaves} — a fleet cluster needs "
                f"at least two leaves (zero or negative counts are "
                f"invalid)")
        if self.lc not in LC_PROFILES:
            raise ScenarioError(
                f"{ctx}.lc: unknown LC workload {self.lc!r}; choose from "
                f"{', '.join(sorted(LC_PROFILES))}")
        if not self.be_mix:
            raise ScenarioError(f"{ctx}.be_mix: must name at least one BE "
                                f"task")
        for be in self.be_mix:
            if be not in BE_PROFILES:
                raise ScenarioError(
                    f"{ctx}.be_mix: unknown BE workload {be!r}; choose "
                    f"from {', '.join(sorted(BE_PROFILES))}")
        self.server.to_machine_spec()
        self.trace.validate(f"{ctx}.trace")


@dataclass(frozen=True)
class FleetSpec:
    """A sharded multi-cluster fleet (the scenario's fourth shape).

    Args:
        clusters: the fleet's clusters, one :class:`ShardSpec` each
            (unique names).
        shard_leaves: maximum leaves per execution shard; every
            cluster is partitioned into ``ceil(leaves / shard_leaves)``
            near-equal shards fanned across the process pool.  Must be
            positive — zero or negative shard sizes are rejected at
            load time.
        record_period_s: cluster record cadence in simulated seconds.
        engine: fleet execution engine — ``"sharded"`` (default) fans
            shards over the process pool, ``"mega"`` runs the whole
            fleet as one in-process array program.  Bit-identical
            telemetry either way; distinct from the per-shard
            ``ShardSpec.engine`` knob, which picks the batch-vs-scalar
            leaf backend inside one shard.
    """

    clusters: Tuple[ShardSpec, ...]
    shard_leaves: int = 64
    record_period_s: float = 30.0
    engine: str = "sharded"

    _FIELDS = ("clusters", "shard_leaves", "record_period_s", "engine")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "fleet") -> "FleetSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        if "clusters" not in data:
            raise ScenarioError(f"{ctx}: missing required field 'clusters'")
        clusters = data["clusters"]
        if not isinstance(clusters, (list, tuple)):
            raise ScenarioError(f"{ctx}.clusters: expected a list of "
                                f"cluster mappings, got {clusters!r}")
        kwargs: Dict[str, Any] = {"clusters": tuple(
            ShardSpec.from_dict(c, f"{ctx}.clusters[{i}]")
            for i, c in enumerate(clusters))}
        if "shard_leaves" in data:
            shard_leaves = data["shard_leaves"]
            if isinstance(shard_leaves, bool) or not isinstance(
                    shard_leaves, int):
                raise ScenarioError(f"{ctx}.shard_leaves: expected an "
                                    f"integer, got {shard_leaves!r}")
            kwargs["shard_leaves"] = shard_leaves
        if "record_period_s" in data:
            kwargs["record_period_s"] = _number(data["record_period_s"],
                                                f"{ctx}.record_period_s")
        if "engine" in data:
            kwargs["engine"] = data["engine"]
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "fleet") -> None:
        """Check the cluster list, shard size, and record cadence."""
        if self.engine not in ("sharded", "mega"):
            raise ScenarioError(
                f"{ctx}.engine: unknown fleet engine {self.engine!r}; "
                f"choose 'sharded' or 'mega'")
        if not self.clusters:
            raise ScenarioError(f"{ctx}.clusters: a fleet needs at least "
                                f"one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ScenarioError(f"{ctx}.clusters: cluster names must be "
                                f"unique, got {names}")
        if self.shard_leaves < 1:
            raise ScenarioError(
                f"{ctx}.shard_leaves: got {self.shard_leaves} — shard size "
                f"must be a positive leaf count (zero or negative values "
                f"are invalid)")
        if self.record_period_s <= 0:
            raise ScenarioError(f"{ctx}.record_period_s: must be positive")
        for i, cluster in enumerate(self.clusters):
            cluster.validate(f"{ctx}.clusters[{i}]")

    def total_leaves(self) -> int:
        """The fleet's whole leaf population."""
        return sum(c.leaves for c in self.clusters)

    def cluster_seed(self, index: int, base_seed: int) -> int:
        """Effective base seed of cluster ``index``."""
        cluster = self.clusters[index]
        return cluster.seed if cluster.seed is not None \
            else base_seed + index

    def validate_seeds(self, base_seed: int, ctx: str = "fleet") -> None:
        """Reject cross-cluster tail-noise seed collisions at load time.

        Delegates to :func:`repro.fleet.shard.overlapping_seed_ranges`
        — the single definition of the collision — with each cluster's
        *effective* seed.  Needs the scenario's base seed (default
        cluster seeds derive from it), hence a separate hook called
        from :meth:`ScenarioSpec.validate`.
        """
        from ..fleet.shard import overlapping_seed_ranges
        collision = overlapping_seed_ranges(
            (self.cluster_seed(i, base_seed), cluster.leaves, cluster.name)
            for i, cluster in enumerate(self.clusters))
        if collision is not None:
            raise ScenarioError(
                f"{ctx}.clusters: {collision[0]!r} and {collision[1]!r} "
                f"have overlapping tail-noise seed ranges (leaf seeds are "
                f"seed * 1000 + leaf_index; give clusters of 1000+ leaves "
                f"more widely spaced seeds)")


@dataclass(frozen=True)
class JobSpec:
    """One typed best-effort job (or a batch of identical ones).

    Lowered onto :class:`~repro.sched.jobs.BeJob`: demand is measured
    in core-seconds of normalized BE throughput (the EMU currency),
    ``max_cores`` bounds fleet-wide parallelism, higher ``priority``
    runs first, and ``count`` expands the spec into that many identical
    jobs named ``name-000``, ``name-001``, ... — the declarative way to
    write a backlog.

    Args:
        name: unique job (or batch) name.
        demand_core_s: total work per job, in normalized core-seconds
            (must be positive).
        max_cores: per-job parallelism limit (>= 1).
        priority: higher is more urgent; ties break by arrival, then
            name.
        arrival_s: simulated time the job(s) join the queue.
        count: how many identical jobs this spec expands into (>= 1).
    """

    name: str
    demand_core_s: float
    max_cores: int = 8
    priority: int = 0
    arrival_s: float = 0.0
    count: int = 1

    _FIELDS = ("name", "demand_core_s", "max_cores", "priority",
               "arrival_s", "count")
    _INT_FIELDS = ("max_cores", "priority", "count")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "job") -> "JobSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        for required in ("name", "demand_core_s"):
            if required not in data:
                raise ScenarioError(f"{ctx}: missing required field "
                                    f"{required!r}")
        if not isinstance(data["name"], str) or not data["name"]:
            raise ScenarioError(f"{ctx}.name: expected a non-empty string")
        kwargs: Dict[str, Any] = {
            "name": data["name"],
            "demand_core_s": _number(data["demand_core_s"],
                                     f"{ctx}.demand_core_s"),
        }
        for name in cls._INT_FIELDS:
            if name in data:
                value = data[name]
                if isinstance(value, bool) or not isinstance(value, int):
                    raise ScenarioError(f"{ctx}.{name}: expected an "
                                        f"integer, got {value!r}")
                kwargs[name] = value
        if "arrival_s" in data:
            kwargs["arrival_s"] = _number(data["arrival_s"],
                                          f"{ctx}.arrival_s")
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "job") -> None:
        """Check demand, limits, arrival, and the batch count."""
        if not self.name:
            raise ScenarioError(f"{ctx}.name: expected a non-empty string")
        if not self.demand_core_s > 0:
            raise ScenarioError(f"{ctx}.demand_core_s: must be positive, "
                                f"got {self.demand_core_s!r}")
        if self.max_cores < 1:
            raise ScenarioError(f"{ctx}.max_cores: must be >= 1, got "
                                f"{self.max_cores!r}")
        if self.arrival_s < 0:
            raise ScenarioError(f"{ctx}.arrival_s: must be >= 0, got "
                                f"{self.arrival_s!r}")
        if self.count < 1:
            raise ScenarioError(f"{ctx}.count: must be >= 1, got "
                                f"{self.count!r}")

    def expand(self):
        """Materialize the runtime :class:`~repro.sched.jobs.BeJob` list.

        A ``count`` of 1 keeps the bare name; larger batches suffix
        ``-000``, ``-001``, ... so every job keeps a unique accounting
        key.
        """
        from ..sched.jobs import BeJob
        if self.count == 1:
            return [BeJob(name=self.name,
                          demand_core_s=self.demand_core_s,
                          max_cores=self.max_cores,
                          priority=self.priority,
                          arrival_s=self.arrival_s)]
        return [BeJob(name=f"{self.name}-{i:03d}",
                      demand_core_s=self.demand_core_s,
                      max_cores=self.max_cores,
                      priority=self.priority,
                      arrival_s=self.arrival_s)
                for i in range(self.count)]


@dataclass(frozen=True)
class ScheduleSpec:
    """A scheduled fleet (the scenario's fifth shape).

    Wraps a :class:`FleetSpec` — the machines the scheduler places
    onto, simulated exactly as a plain ``fleet:`` scenario would be —
    plus the best-effort job queue and the scheduling knobs.  With an
    empty ``jobs`` list the run is *bit-identical* to the plain fleet
    run (the scheduler meters jobs over Heracles' slack; it never
    changes leaf physics).

    Args:
        fleet: the fleet to schedule over.
        jobs: the typed BE job queue (expanded via ``count``; names
            must stay unique after expansion).
        policy: placement policy — one of
            :data:`repro.sched.policies.POLICIES`.
        epoch_s: decision-epoch length in simulated seconds.
        queue_limit: admission control — arrivals past this many
            waiting-or-running jobs are rejected (0 = unlimited).
    """

    fleet: FleetSpec
    jobs: Tuple[JobSpec, ...] = ()
    policy: str = "slack-greedy"
    epoch_s: float = 60.0
    queue_limit: int = 0

    _FIELDS = ("fleet", "jobs", "policy", "epoch_s", "queue_limit")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "schedule") -> "ScheduleSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        if "fleet" not in data:
            raise ScenarioError(f"{ctx}: missing required field 'fleet'")
        kwargs: Dict[str, Any] = {
            "fleet": FleetSpec.from_dict(data["fleet"], f"{ctx}.fleet")}
        if "jobs" in data:
            jobs = data["jobs"]
            if not isinstance(jobs, (list, tuple)):
                raise ScenarioError(f"{ctx}.jobs: expected a list of job "
                                    f"mappings, got {jobs!r}")
            kwargs["jobs"] = tuple(
                JobSpec.from_dict(j, f"{ctx}.jobs[{i}]")
                for i, j in enumerate(jobs))
        if "policy" in data:
            kwargs["policy"] = data["policy"]
        if "epoch_s" in data:
            kwargs["epoch_s"] = _number(data["epoch_s"], f"{ctx}.epoch_s")
        if "queue_limit" in data:
            limit = data["queue_limit"]
            if isinstance(limit, bool) or not isinstance(limit, int):
                raise ScenarioError(f"{ctx}.queue_limit: expected an "
                                    f"integer, got {limit!r}")
            kwargs["queue_limit"] = limit
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "schedule") -> None:
        """Check the fleet, the job queue, and the scheduling knobs."""
        from ..sched.policies import POLICIES
        self.fleet.validate(f"{ctx}.fleet")
        if self.policy not in POLICIES:
            raise ScenarioError(
                f"{ctx}.policy: unknown scheduling policy "
                f"{self.policy!r}; choose from {', '.join(POLICIES)}")
        if self.epoch_s <= 0:
            raise ScenarioError(f"{ctx}.epoch_s: must be positive")
        if self.queue_limit < 0:
            raise ScenarioError(f"{ctx}.queue_limit: must be >= 0 "
                                f"(0 = unlimited)")
        names = set()
        for i, job in enumerate(self.jobs):
            job.validate(f"{ctx}.jobs[{i}]")
            for expanded in job.expand():
                if expanded.name in names:
                    raise ScenarioError(
                        f"{ctx}.jobs[{i}]: job name {expanded.name!r} "
                        f"collides after expansion; names are the "
                        f"accounting key and must stay unique")
                names.add(expanded.name)

    def expand_jobs(self):
        """The full runtime job list (every spec's ``count`` expanded)."""
        jobs = []
        for job in self.jobs:
            jobs.extend(job.expand())
        return jobs


@dataclass(frozen=True)
class CheckpointSpec:
    """Checkpoint/resume and telemetry-spill controls for a run.

    One stanza drives three independent long-horizon knobs (give at
    least one — an empty stanza is rejected rather than silently
    ignored):

    Args:
        save: checkpoint destination — snapshot the full engine state
            mid-run so a later scenario run can warm-start from it.
            A directory for fleet/schedule scenarios (one archive per
            shard plus a manifest), a single ``.npz`` archive path for
            member scenarios (all members ride in one engine).
            Requires ``at_s``.
        at_s: simulated time of the snapshot; must land on a tick
            strictly inside the run.
        resume: a checkpoint written by a previous run of this same
            scenario shape; the run restores every engine and ticks
            only the remaining steps.  Bit-identical to running from
            ``t = 0``.
        spill_dir: bound telemetry memory by streaming full history
            chunks to ``.npy`` files under this directory instead of
            growing RAM with the horizon.
    """

    save: Optional[str] = None
    at_s: Optional[float] = None
    resume: Optional[str] = None
    spill_dir: Optional[str] = None

    _FIELDS = ("save", "at_s", "resume", "spill_dir")
    _PATH_FIELDS = ("save", "resume", "spill_dir")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "checkpoint") -> "CheckpointSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        kwargs: Dict[str, Any] = {}
        for name in cls._PATH_FIELDS:
            value = data.get(name)
            if value is None:
                continue
            if not isinstance(value, str) or not value:
                raise ScenarioError(f"{ctx}.{name}: expected a non-empty "
                                    f"path string, got {value!r}")
            kwargs[name] = value
        if data.get("at_s") is not None:
            kwargs["at_s"] = _number(data["at_s"], f"{ctx}.at_s")
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "checkpoint") -> None:
        """Check the save/at_s pairing and value ranges."""
        if all(getattr(self, name) is None for name in self._FIELDS):
            raise ScenarioError(
                f"{ctx}: an empty checkpoint stanza does nothing; give "
                f"'save' + 'at_s', 'resume', and/or 'spill_dir'")
        if (self.save is None) != (self.at_s is None):
            raise ScenarioError(
                f"{ctx}: 'save' and 'at_s' go together — give both to "
                f"take a snapshot, neither to skip it")
        if self.at_s is not None:
            if not math.isfinite(self.at_s) or self.at_s <= 0:
                raise ScenarioError(f"{ctx}.at_s: must be a positive time "
                                    f"inside the run, got {self.at_s!r}")


@dataclass(frozen=True)
class InjectionSpec:
    """A timed event applied mid-run to members or fleet leaves.

    Injections model events the controller must *react* to — a BE
    antagonist arriving at ``t=600``, an operator forcing cores away,
    a leaf crashing — as opposed to load spikes, which live on the
    trace.  The first five actions map directly onto
    :class:`~repro.sim.actuators.Actuators` calls: ``enable_be``,
    ``disable_be``, ``set_be_cores``, ``set_llc_split``,
    ``set_be_net_ceil`` (the last three take ``value``).  The five
    *chaos* actions are resolved inside the simulation engines as
    masked column updates (bit-identical across scalar/batch/mega):

    * ``leaf_crash`` — the leaf drops out of physics and telemetry
      (zero load, zero tail, BE force-disabled); no value.
    * ``leaf_restart`` — a crashed leaf rejoins cold (BE disabled,
      actuators reset); no value.
    * ``straggler`` — per-leaf frequency/DRAM derate; ``value`` is the
      derate factor in (0, 1] (1.0 restores full speed).
    * ``power_cap`` — TDP override; ``value`` is the fraction of the
      stock TDP in (0, 1] (1.0 restores the stock limit).
    * ``partition`` — root↔leaf link blackout; ``value`` is the
      blackout duration in seconds (load held at the root, tail
      pinned at 10x SLO while partitioned).

    ``cluster`` / ``leaf`` target the event: in a fleet scenario
    ``cluster`` names one cluster (default: every cluster) and
    ``leaf`` one leaf index within it (default: every leaf); in a
    members scenario ``leaf`` is the member index (default: every
    member) and ``cluster`` is not accepted.
    """

    at_s: float
    action: str
    value: Optional[float] = None
    cluster: Optional[str] = None
    leaf: Optional[int] = None

    _FIELDS = ("at_s", "action", "value", "cluster", "leaf")
    _VALUE_ACTIONS = ("set_be_cores", "set_llc_split", "set_be_net_ceil",
                      "straggler", "power_cap", "partition")
    #: value must lie in (0, 1] for these actions (derate fractions).
    _FRACTION_ACTIONS = ("straggler", "power_cap")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "injection") -> "InjectionSpec":
        """Build from a mapping, rejecting unknown fields."""
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        for name in ("at_s", "action"):
            if name not in data:
                raise ScenarioError(f"{ctx}: missing required field "
                                    f"{name!r}")
        value = data.get("value")
        leaf = data.get("leaf")
        if leaf is not None and (isinstance(leaf, bool)
                                 or not isinstance(leaf, int)):
            raise ScenarioError(f"{ctx}.leaf: expected an integer leaf "
                                f"index, got {leaf!r}")
        cluster = data.get("cluster")
        if cluster is not None and not isinstance(cluster, str):
            raise ScenarioError(f"{ctx}.cluster: expected a cluster name "
                                f"string, got {cluster!r}")
        spec = cls(at_s=_number(data["at_s"], f"{ctx}.at_s"),
                   action=data["action"],
                   value=None if value is None
                   else _number(value, f"{ctx}.value"),
                   cluster=cluster, leaf=leaf)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "injection") -> None:
        """Check the action name, value requirements, and targeting."""
        if not math.isfinite(self.at_s):
            raise ScenarioError(f"{ctx}.at_s: must be finite, got "
                                f"{self.at_s!r}")
        if self.at_s < 0:
            raise ScenarioError(f"{ctx}.at_s: must be >= 0")
        if self.action not in INJECTION_ACTIONS:
            raise ScenarioError(
                f"{ctx}.action: unknown action {self.action!r}; choose "
                f"from {', '.join(INJECTION_ACTIONS)}")
        if self.action in self._VALUE_ACTIONS and self.value is None:
            raise ScenarioError(f"{ctx}: action {self.action!r} requires "
                                f"a 'value'")
        if self.action not in self._VALUE_ACTIONS and self.value is not None:
            raise ScenarioError(f"{ctx}: action {self.action!r} takes no "
                                f"'value'")
        if self.value is not None and not math.isfinite(self.value):
            raise ScenarioError(f"{ctx}.value: must be finite, got "
                                f"{self.value!r}")
        if self.action in self._FRACTION_ACTIONS and not (
                0.0 < self.value <= 1.0):
            raise ScenarioError(f"{ctx}.value: {self.action!r} takes a "
                                f"fraction in (0, 1], got {self.value!r}")
        if self.action == "partition" and self.value <= 0:
            raise ScenarioError(f"{ctx}.value: 'partition' takes a "
                                f"positive blackout duration in seconds")
        if self.leaf is not None and self.leaf < 0:
            raise ScenarioError(f"{ctx}.leaf: must be >= 0")
        if self.cluster is not None and not self.cluster:
            raise ScenarioError(f"{ctx}.cluster: must be a non-empty "
                                f"cluster name")

    @property
    def is_chaos(self) -> bool:
        """True for engine-level chaos actions (vs actuator pokes)."""
        return self.action in CHAOS_ACTIONS


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-contained experiment description.

    Exactly one of ``members`` (explicit servers), ``sweep`` (a grid of
    constant-load runs), ``cluster`` (the §5.3 minicluster), ``fleet``
    (a sharded multi-cluster fleet) or ``schedule`` (a fleet with a
    best-effort job queue scheduled over it) selects the scenario
    shape; the compiler lowers each shape onto a different part of the
    engine stack (see :mod:`repro.scenarios.compiler`).

    Args:
        name: registry/display name.
        description: one-line human summary.
        server: hardware overrides (defaults to the paper's machine).
        controller: policy for every member unless overridden per
            member — one of ``heracles``, ``none``,
            ``static-conservative``, ``static-optimistic``.
        duration_s / dt_s / warmup_s: run length, tick size, and the
            warm-up prefix excluded from reported metrics.
        seed: base RNG seed (members without an explicit seed get
            ``seed + index``).
        engine: ``auto`` | ``scalar`` | ``batch`` for member scenarios.
        members / sweep / cluster / fleet / schedule: the scenario
            shape (exactly one).
        injections: timed actuator pokes and chaos events, applied to
            members (member scenarios) or fleet leaves (fleet/schedule
            scenarios), optionally targeted via ``cluster``/``leaf``.
        checkpoint: checkpoint/resume and telemetry-spill controls
            (member, fleet, and schedule scenarios; sweeps and
            miniclusters reject the stanza rather than ignore it).
    """

    name: str
    description: str = ""
    server: ServerSpec = field(default_factory=ServerSpec)
    controller: str = "heracles"
    duration_s: float = 900.0
    dt_s: float = 1.0
    warmup_s: float = 240.0
    seed: int = 0
    engine: str = "auto"
    members: Tuple[WorkloadSpec, ...] = ()
    sweep: Optional[SweepSpec] = None
    cluster: Optional[ClusterSpec] = None
    fleet: Optional[FleetSpec] = None
    schedule: Optional[ScheduleSpec] = None
    injections: Tuple[InjectionSpec, ...] = ()
    checkpoint: Optional[CheckpointSpec] = None

    _FIELDS = ("name", "description", "server", "controller", "duration_s",
               "dt_s", "warmup_s", "seed", "engine", "members", "sweep",
               "cluster", "fleet", "schedule", "injections", "checkpoint")

    @classmethod
    def from_dict(cls, data: Any, ctx: str = "scenario") -> "ScenarioSpec":
        """Build a full scenario from a (possibly nested) mapping.

        Rejects unknown fields at every level and validates the result;
        this is the single entry point the loader and the registry use.
        """
        data = _require_mapping(data, ctx)
        _reject_unknown(data, cls._FIELDS, ctx)
        if "name" not in data or not isinstance(data["name"], str):
            raise ScenarioError(f"{ctx}: a scenario needs a string 'name'")
        kwargs: Dict[str, Any] = {"name": data["name"]}
        if "description" in data:
            if not isinstance(data["description"], str):
                raise ScenarioError(f"{ctx}.description: expected a string")
            kwargs["description"] = data["description"]
        if "server" in data:
            kwargs["server"] = ServerSpec.from_dict(data["server"],
                                                    f"{ctx}.server")
        if "controller" in data:
            kwargs["controller"] = data["controller"]
        for name in ("duration_s", "dt_s", "warmup_s"):
            if name in data:
                kwargs[name] = _number(data[name], f"{ctx}.{name}")
        if "seed" in data:
            seed = data["seed"]
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ScenarioError(f"{ctx}.seed: expected an integer, "
                                    f"got {seed!r}")
            kwargs["seed"] = seed
        if "engine" in data:
            kwargs["engine"] = data["engine"]
        if "members" in data:
            members = data["members"]
            if not isinstance(members, (list, tuple)):
                raise ScenarioError(f"{ctx}.members: expected a list")
            kwargs["members"] = tuple(
                WorkloadSpec.from_dict(m, f"{ctx}.members[{i}]")
                for i, m in enumerate(members))
        if "sweep" in data and data["sweep"] is not None:
            kwargs["sweep"] = SweepSpec.from_dict(data["sweep"],
                                                  f"{ctx}.sweep")
        if "cluster" in data and data["cluster"] is not None:
            kwargs["cluster"] = ClusterSpec.from_dict(data["cluster"],
                                                      f"{ctx}.cluster")
        if "fleet" in data and data["fleet"] is not None:
            kwargs["fleet"] = FleetSpec.from_dict(data["fleet"],
                                                  f"{ctx}.fleet")
        if "schedule" in data and data["schedule"] is not None:
            kwargs["schedule"] = ScheduleSpec.from_dict(data["schedule"],
                                                        f"{ctx}.schedule")
        if "injections" in data:
            injections = data["injections"]
            if not isinstance(injections, (list, tuple)):
                raise ScenarioError(f"{ctx}.injections: expected a list")
            kwargs["injections"] = tuple(
                InjectionSpec.from_dict(inj, f"{ctx}.injections[{i}]")
                for i, inj in enumerate(injections))
        if "checkpoint" in data and data["checkpoint"] is not None:
            kwargs["checkpoint"] = CheckpointSpec.from_dict(
                data["checkpoint"], f"{ctx}.checkpoint")
        spec = cls(**kwargs)
        spec.validate(ctx)
        return spec

    def validate(self, ctx: str = "scenario") -> None:
        """Validate the whole spec tree (shape, ranges, nested specs)."""
        shapes = [s for s in ("members", "sweep", "cluster", "fleet",
                              "schedule")
                  if (getattr(self, s) or None) is not None]
        if len(shapes) != 1:
            raise ScenarioError(
                f"{ctx}: exactly one of 'members', 'sweep', 'cluster', "
                f"'fleet' or 'schedule' must be given "
                f"(got {shapes or 'none'})")
        if self.controller not in CONTROLLERS:
            raise ScenarioError(
                f"{ctx}.controller: unknown controller "
                f"{self.controller!r}; choose from {', '.join(CONTROLLERS)}")
        if self.engine not in ENGINES:
            raise ScenarioError(f"{ctx}.engine: unknown engine "
                                f"{self.engine!r}; choose from "
                                f"{', '.join(ENGINES)}")
        if self.duration_s <= 0:
            raise ScenarioError(f"{ctx}.duration_s: must be positive")
        if self.dt_s <= 0:
            raise ScenarioError(f"{ctx}.dt_s: must be positive")
        if not 0 <= self.warmup_s < self.duration_s:
            raise ScenarioError(f"{ctx}.warmup_s: must be in "
                                f"[0, duration_s)")
        if self.engine == "scalar" and len(self.members) > 1:
            raise ScenarioError(f"{ctx}: the scalar engine runs exactly one "
                                f"member; use engine 'batch' (or 'auto') "
                                f"for {len(self.members)} members")
        # Fields the other shapes would silently ignore are rejected
        # instead — the subsystem's no-silent-defaults contract.
        if self.sweep is not None and self.dt_s != 1.0:
            raise ScenarioError(f"{ctx}.dt_s: sweep cells always run at "
                                f"the engine's 1 s tick; drop dt_s")
        if (self.sweep is not None or self.cluster is not None
                or self.fleet is not None
                or self.schedule is not None) and self.engine != "auto":
            raise ScenarioError(
                f"{ctx}.engine: only member scenarios take a top-level "
                f"engine (cluster scenarios set cluster.engine; fleets "
                f"always run sharded batches)")
        fleet_like = self.fleet if self.fleet is not None else (
            self.schedule.fleet if self.schedule is not None else None)
        if self.checkpoint is not None:
            if not self.members and fleet_like is None:
                raise ScenarioError(
                    f"{ctx}.checkpoint: checkpointing applies to "
                    f"'members', 'fleet' and 'schedule' scenarios; sweep "
                    f"cells and minicluster arms are short independent "
                    f"runs with nothing to resume")
            self.checkpoint.validate(f"{ctx}.checkpoint")
            if (self.checkpoint.at_s is not None
                    and self.checkpoint.at_s > self.duration_s):
                raise ScenarioError(
                    f"{ctx}.checkpoint.at_s: snapshot at "
                    f"{self.checkpoint.at_s} s lands after the scenario "
                    f"ends (duration_s={self.duration_s}); it must land "
                    f"inside the run")
        if self.injections and not self.members and fleet_like is None:
            raise ScenarioError(f"{ctx}.injections: injections require a "
                                f"'members', 'fleet' or 'schedule' "
                                f"scenario")
        if fleet_like is not None and not self.server.is_default():
            raise ScenarioError(
                f"{ctx}.server: fleet scenarios declare hardware per "
                f"cluster (fleet.clusters[*].server), not at the top "
                f"level")
        if fleet_like is not None and self.controller != "heracles":
            raise ScenarioError(
                f"{ctx}.controller: fleet scenarios run Heracles on "
                f"managed clusters and nothing on baseline ones; set "
                f"'managed: false' per cluster instead of a controller")
        self.server.to_machine_spec()
        for i, member in enumerate(self.members):
            member.validate(f"{ctx}.members[{i}]")
        if self.sweep is not None:
            self.sweep.validate(f"{ctx}.sweep")
        if self.cluster is not None:
            self.cluster.validate(f"{ctx}.cluster")
        if self.fleet is not None:
            self.fleet.validate(f"{ctx}.fleet")
            self.fleet.validate_seeds(self.seed, f"{ctx}.fleet")
        if self.schedule is not None:
            self.schedule.validate(f"{ctx}.schedule")
            self.schedule.fleet.validate_seeds(self.seed,
                                               f"{ctx}.schedule.fleet")
        cluster_leaves = ({c.name: c.leaves for c in fleet_like.clusters}
                          if fleet_like is not None else None)
        for i, injection in enumerate(self.injections):
            ictx = f"{ctx}.injections[{i}]"
            injection.validate(ictx)
            if injection.at_s >= self.duration_s:
                raise ScenarioError(
                    f"{ictx}.at_s: fires at {injection.at_s} s, at or "
                    f"after the scenario ends (duration_s="
                    f"{self.duration_s}); injections must fire inside "
                    f"the run")
            if self.members:
                if injection.cluster is not None:
                    raise ScenarioError(
                        f"{ictx}.cluster: member scenarios have no "
                        f"clusters; use 'leaf' to target one member")
                if (injection.leaf is not None
                        and injection.leaf >= len(self.members)):
                    raise ScenarioError(
                        f"{ictx}.leaf: member index {injection.leaf} out "
                        f"of range for {len(self.members)} member(s)")
            elif cluster_leaves is not None:
                if (injection.cluster is not None
                        and injection.cluster not in cluster_leaves):
                    raise ScenarioError(
                        f"{ictx}.cluster: unknown cluster "
                        f"{injection.cluster!r}; fleet clusters: "
                        f"{', '.join(sorted(cluster_leaves))}")
                if injection.leaf is not None:
                    if injection.cluster is None:
                        raise ScenarioError(
                            f"{ictx}.leaf: a fleet-wide injection cannot "
                            f"name a leaf index; add 'cluster' to pick "
                            f"the cluster the index refers to")
                    if injection.leaf >= cluster_leaves[injection.cluster]:
                        raise ScenarioError(
                            f"{ictx}.leaf: leaf index {injection.leaf} "
                            f"out of range for cluster "
                            f"{injection.cluster!r} "
                            f"({cluster_leaves[injection.cluster]} "
                            f"leaves)")

    def member_seed(self, index: int) -> int:
        """Effective tail-noise seed of member ``index``."""
        member = self.members[index]
        return member.seed if member.seed is not None else self.seed + index

    def member_controller(self, index: int) -> str:
        """Effective controller name of member ``index``."""
        member = self.members[index]
        return member.controller or self.controller

    def to_data(self) -> Dict[str, Any]:
        """The spec as a plain JSON-ready mapping.

        The inverse of :meth:`from_dict`:
        ``ScenarioSpec.from_dict(spec.to_data()) == spec`` for every
        valid spec, so a programmatically built scenario (say, one a
        fuzzer generated) can be written to a ``.json`` file that
        ``load_scenario`` replays exactly.
        """
        return _spec_to_data(self)


def _spec_to_data(obj: Any) -> Any:
    """Recursive worker behind :meth:`ScenarioSpec.to_data`.

    Walks each spec dataclass's ``_FIELDS``, dropping ``None`` and
    empty-sequence values (the loader's defaults recreate them) so the
    emitted mapping passes every ``_reject_unknown`` check on the way
    back in.  :class:`TraceSpec` additionally emits only the fields its
    ``kind`` accepts.
    """
    if isinstance(obj, TraceSpec):
        allowed = (("kind",) + _TRACE_KIND_FIELDS[obj.kind]
                   + ("phase_s", "spikes"))
        return {name: _spec_to_data(getattr(obj, name))
                for name in allowed
                if getattr(obj, name) is not None
                and (getattr(obj, name) or name not in ("phase_s",
                                                        "spikes"))}
    if dataclasses.is_dataclass(obj):
        data = {}
        for name in obj._FIELDS:
            value = getattr(obj, name)
            if value is None or (isinstance(value, tuple) and not value):
                continue
            data[name] = _spec_to_data(value)
        return data
    if isinstance(obj, (list, tuple)):
        return [_spec_to_data(item) for item in obj]
    return obj
