"""Record-oriented facades over columnar telemetry storage.

The engines' public history types (``SimHistory``, ``BatchHistory``,
``ClusterHistory``) predate the columnar subsystem and expose a
list-of-dataclass surface: ``history.records``, ``history.last()``,
per-record attribute access.  These adapters keep that surface intact
— the 676-test suite and every experiment consumer run unchanged —
while the actual storage is a :class:`~repro.metrics.columns.
ColumnStore` (or a member slice of a :class:`~repro.metrics.columns.
BatchColumnStore`), and every aggregate metric routes through
:class:`~repro.metrics.windows.WindowedMetrics`.

Records are *materialized on demand*: ``history.records`` builds the
dataclass list from the columns when asked (an O(T) convenience for
tests and notebooks), it is not the storage.  Appending to the
returned list does not record anything — use ``history.append``.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Tuple, Type

import numpy as np

from .columns import BatchColumnStore, ColumnStore
from .windows import WindowedMetrics


class RecordSeries:
    """Read API of one record stream stored as columns.

    Subclasses declare the record dataclass and field coercions as
    class attributes and implement the two storage hooks
    (:meth:`_raw_column`, :meth:`__len__`).  Everything else — float
    column views, record materialization, windowed metrics — is shared.

    Class attributes:
        RECORD_TYPE: the dataclass materialized records are built from.
        INT_FIELDS / BOOL_FIELDS: decoded to ``int`` / ``bool``.
        OPTIONAL_FIELDS: float fields where NaN decodes to ``None``.
        TIME_FIELD: the per-sample timestamp column.
    """

    RECORD_TYPE: Type = None
    INT_FIELDS: FrozenSet[str] = frozenset()
    BOOL_FIELDS: FrozenSet[str] = frozenset()
    OPTIONAL_FIELDS: FrozenSet[str] = frozenset()
    TIME_FIELD: str = "t_s"

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The record dataclass's field names, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(cls.RECORD_TYPE))

    @classmethod
    def field_dtypes(cls) -> List[Tuple[str, object]]:
        """Storage dtypes for each field (narrow ints/bools, float64)."""
        out = []
        for name in cls.field_names():
            if name in cls.INT_FIELDS:
                out.append((name, np.int32))
            elif name in cls.BOOL_FIELDS:
                out.append((name, np.bool_))
            else:
                out.append((name, np.float64))
        return out

    # -- storage hooks --------------------------------------------------

    def _raw_column(self, name: str) -> np.ndarray:
        """(T,) view of one field in its storage dtype."""
        raise NotImplementedError

    def _raw_chunks(self, name: str):
        """Iterator of (rows,) chunks of one field in storage dtype."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of recorded ticks."""
        raise NotImplementedError

    # -- columnar reads -------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """One field over the whole run as ``float64``, shape (T,).

        Zero-copy for float fields; int/bool fields up-cast on read
        (the dtype this API always returned).
        """
        raw = self._raw_column(name)
        if raw.dtype == np.float64:
            return raw
        return raw.astype(np.float64)

    def times(self) -> np.ndarray:
        """Per-sample timestamps of the recorded run, shape (T,)."""
        return self.column(self.TIME_FIELD)

    def column_chunks(self, name: str):
        """Stream one field as ``float64`` chunks, without materializing.

        For spilled histories each chunk arrives memory-mapped (see
        :meth:`~repro.metrics.columns.ColumnStore.column_chunks`), so
        the streaming aggregates in :mod:`repro.metrics.windows` run
        with peak RSS bounded by the chunk size; in-RAM histories yield
        their single live view.
        """
        for chunk in self._raw_chunks(name):
            if chunk.dtype == np.float64:
                yield chunk
            else:
                yield chunk.astype(np.float64)

    def chunk_pairs(self, name: str):
        """(values, times) chunk pairs for the streaming aggregates."""
        return zip(self.column_chunks(name),
                   self.column_chunks(self.TIME_FIELD))

    # -- record materialization -----------------------------------------

    def _decode(self, name: str, value):
        """One stored cell back to its record-field Python type."""
        if name in self.INT_FIELDS:
            return int(value)
        if name in self.BOOL_FIELDS:
            return bool(value)
        value = float(value)
        if name in self.OPTIONAL_FIELDS and np.isnan(value):
            return None
        return value

    def _record(self, index: int):
        """Materialize the record at ``index`` (negative ok)."""
        return self.RECORD_TYPE(**{
            name: self._decode(name, self._raw_column(name)[index])
            for name in self.field_names()
        })

    @property
    def records(self) -> list:
        """The run as a list of records (materialized on demand).

        A snapshot for iteration and inspection; mutating the returned
        list does not modify the history.  Each column is fetched once
        for the whole list — per-index fetches would re-materialize
        spilled columns from their chunk files O(T) times.
        """
        names = self.field_names()
        columns = {name: self._raw_column(name) for name in names}
        return [self.RECORD_TYPE(**{
            name: self._decode(name, columns[name][i]) for name in names})
            for i in range(len(self))]

    def last(self):
        """The most recent tick's record."""
        return self._record(-1)

    # -- metrics --------------------------------------------------------

    @property
    def metrics(self) -> WindowedMetrics:
        """The windowed-metric helper bound to this history."""
        cached = self.__dict__.get("_metrics")
        if cached is None:
            cached = WindowedMetrics(self.column, self.times)
            self.__dict__["_metrics"] = cached
        return cached


class ColumnarHistory(RecordSeries):
    """A :class:`RecordSeries` that owns its :class:`ColumnStore`.

    ``spill_dir`` / ``spill_chunk_rows`` pass straight through to the
    store (see :class:`~repro.metrics.columns.ColumnStore`): when set,
    full chunks of history flush to disk and resident memory stays
    bounded by the chunk size.
    """

    def __init__(self, spill_dir=None, spill_chunk_rows=None):
        self._store = ColumnStore(self.field_dtypes(),
                                  spill_dir=spill_dir,
                                  spill_chunk_rows=spill_chunk_rows)

    @property
    def store(self) -> ColumnStore:
        """The backing column store (benchmarks read its ``nbytes``)."""
        return self._store

    def append(self, record) -> None:
        """Record one tick from a record dataclass instance."""
        self._store.append_row({
            name: getattr(record, name) for name in self.field_names()})

    def _raw_column(self, name: str) -> np.ndarray:
        """(T,) view straight from the owned store."""
        return self._store.raw_column(name)

    def _raw_chunks(self, name: str):
        """Chunk stream straight from the owned store."""
        return self._store.column_chunks(name)

    def __len__(self) -> int:
        """Number of recorded ticks."""
        return len(self._store)


class BatchMemberSeries(RecordSeries):
    """One member's slice of a shared :class:`BatchColumnStore`.

    The batched engine records whole ticks as (N,)-vector writes; this
    view presents member ``index``'s slice with the full scalar-history
    surface (records, columns, windowed metrics) at zero storage cost.
    """

    def __init__(self, store: BatchColumnStore, index: int):
        self._batch_store = store
        self._index = index

    @property
    def store(self) -> BatchColumnStore:
        """The shared batch store this view reads."""
        return self._batch_store

    def _raw_column(self, name: str) -> np.ndarray:
        """(T,) member slice (shared columns come back as-is)."""
        return self._batch_store.member_column(name, self._index)

    def _raw_chunks(self, name: str):
        """Member-slice chunk stream from the shared store."""
        return self._batch_store.member_column_chunks(name, self._index)

    def __len__(self) -> int:
        """Number of recorded ticks."""
        return len(self._batch_store)
