"""CPU topology: sockets, physical cores, and HyperThreads.

Heracles pins the latency-critical (LC) workload and best-effort (BE) tasks
to disjoint sets of *physical* cores (the paper shows HyperThread sharing
between LC and BE is never safe).  The topology object gives every
hardware thread a stable identity and answers the sibling/socket queries
that the cpuset layer and the controller need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .spec import MachineSpec


@dataclass(frozen=True, order=True)
class CoreId:
    """Identity of one hardware thread (socket, physical core, thread)."""

    socket: int
    core: int
    thread: int = 0

    def sibling(self, threads_per_core: int = 2) -> "CoreId":
        """The other HyperThread on the same physical core (2-way SMT)."""
        if threads_per_core != 2:
            raise ValueError("sibling() is defined for 2-way SMT only")
        return CoreId(self.socket, self.core, 1 - self.thread)

    @property
    def physical(self) -> Tuple[int, int]:
        """(socket, core) pair identifying the physical core."""
        return (self.socket, self.core)


class CpuTopology:
    """Enumerates and indexes the hardware threads of a machine."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._threads: List[CoreId] = []
        for s in range(spec.sockets):
            for c in range(spec.socket.cores):
                for t in range(spec.socket.threads_per_core):
                    self._threads.append(CoreId(s, c, t))
        self._thread_set = frozenset(self._threads)

    def all_threads(self) -> List[CoreId]:
        return list(self._threads)

    def primary_threads(self) -> List[CoreId]:
        """One hardware thread per physical core (thread 0)."""
        return [t for t in self._threads if t.thread == 0]

    def threads_on_socket(self, socket: int) -> List[CoreId]:
        return [t for t in self._threads if t.socket == socket]

    def physical_cores(self) -> List[Tuple[int, int]]:
        return sorted({t.physical for t in self._threads})

    def contains(self, thread: CoreId) -> bool:
        return thread in self._thread_set

    def siblings_of(self, threads: Iterable[CoreId]) -> List[CoreId]:
        """Sibling hyperthreads of the given threads (2-way SMT)."""
        out = []
        for t in threads:
            if self.spec.socket.threads_per_core == 2:
                out.append(t.sibling())
        return out

    def physical_core_count(self, threads: Iterable[CoreId]) -> int:
        """Number of distinct physical cores touched by ``threads``."""
        return len({t.physical for t in threads})

    def per_socket_core_count(self, threads: Iterable[CoreId]) -> Dict[int, int]:
        """Distinct physical cores per socket touched by ``threads``."""
        per: Dict[int, set] = {s: set() for s in range(self.spec.sockets)}
        for t in threads:
            per[t.socket].add(t.physical)
        return {s: len(v) for s, v in per.items()}


class DvfsState:
    """Per-physical-core DVFS frequency caps.

    Heracles' power subcontroller lowers/raises the frequency limit of the
    cores running BE tasks in 100 MHz steps (§4.1).  A cap of ``None``
    means "no cap": the core may run up to the turbo ceiling.
    """

    def __init__(self, topology: CpuTopology):
        self._topology = topology
        self._caps: Dict[Tuple[int, int], Optional[float]] = {
            pc: None for pc in topology.physical_cores()
        }

    def set_cap_ghz(self, cores: Iterable[CoreId], freq_ghz: Optional[float]) -> None:
        """Apply a frequency cap to the physical cores behind ``cores``."""
        turbo = self._topology.spec.socket.turbo
        for c in cores:
            if not self._topology.contains(c):
                raise KeyError(f"unknown core {c}")
            cap = None if freq_ghz is None else turbo.clamp_ghz(freq_ghz)
            self._caps[c.physical] = cap

    def cap_ghz(self, core: CoreId) -> Optional[float]:
        return self._caps[core.physical]

    def step_down(self, cores: Iterable[CoreId], steps: int = 1) -> None:
        """Lower the cap by ``steps`` DVFS steps (create a cap at the
        current ceiling first if the core was uncapped)."""
        turbo = self._topology.spec.socket.turbo
        for c in cores:
            current = self._caps[c.physical]
            if current is None:
                current = turbo.max_turbo_ghz
            self._caps[c.physical] = turbo.clamp_ghz(
                current - steps * turbo.step_ghz)

    def step_up(self, cores: Iterable[CoreId], steps: int = 1) -> None:
        """Raise the cap by ``steps`` DVFS steps, saturating at max turbo."""
        turbo = self._topology.spec.socket.turbo
        for c in cores:
            current = self._caps[c.physical]
            if current is None:
                continue
            raised = current + steps * turbo.step_ghz
            if raised >= turbo.max_turbo_ghz:
                self._caps[c.physical] = turbo.max_turbo_ghz
            else:
                self._caps[c.physical] = turbo.clamp_ghz(raised)

    def min_cap_on(self, cores: Iterable[CoreId]) -> Optional[float]:
        """The lowest cap among ``cores`` (None if all uncapped)."""
        caps = [self._caps[c.physical] for c in cores
                if self._caps[c.physical] is not None]
        return min(caps) if caps else None
