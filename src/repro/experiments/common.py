"""Shared experiment machinery.

Two kinds of experiment run in the paper:

* **Characterization** (§3, Figure 1): the LC workload is pinned to
  enough cores to satisfy its SLO at a given load; a single-resource
  antagonist runs on the remaining cores (or sibling HyperThreads, or a
  shared-core CFS container), with *no* isolation mechanisms beyond the
  pinning.  The model is steady-state, so one contention resolution per
  cell suffices.

* **Controlled colocation** (§5, Figures 4-8): the LC workload and a BE
  task run under a controller (Heracles or a baseline) and the system is
  simulated through time.  :func:`run_colocation` wraps the build → warm
  up → measure loop used by all of those figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.config import HeraclesConfig
from ..core.controller import HeraclesController
from ..core.dram_model import LcDramBandwidthModel
from ..hardware.server import Server
from ..hardware.spec import MachineSpec, default_machine_spec
from ..oslayer.scheduler import CfsSharedCoreModel
from ..sim.engine import ColocationSim, SimHistory
from ..sim.runner import memoized_dram_model, run_sweep
from ..workloads.antagonists import AntagonistSpec, Placement, make_antagonist
from ..workloads.base import Allocation, spread_cores
from ..workloads.best_effort import BestEffortWorkload, make_be_workload
from ..workloads.latency_critical import (LatencyCriticalWorkload,
                                          make_lc_workload)
from ..workloads.traces import ConstantLoad, LoadTrace


@dataclass
class CharacterizationResult:
    """One Figure 1 cell."""

    lc_name: str
    antagonist: str
    load: float
    slo_fraction: float
    lc_cores: int
    antagonist_cores: int


def characterization_cell(lc: LatencyCriticalWorkload,
                          antagonist_spec: AntagonistSpec,
                          load: float,
                          spec: Optional[MachineSpec] = None
                          ) -> CharacterizationResult:
    """Run one (LC workload, antagonist, load) characterization point.

    Reproduces the §3.2 methodology: core pinning only, no CAT, no DVFS
    caps, no traffic control.
    """
    spec = spec or lc.spec
    server = Server(spec)
    total = spec.total_cores
    placement = antagonist_spec.placement
    antagonist = make_antagonist(antagonist_spec, spec)

    sched_delay_ms = 0.0
    lc_ht_share = 0.0

    if placement is Placement.REMAINING_CORES:
        lc_cores = min(lc.required_cores(load, target_fraction=0.85),
                       total - 1)
        ant_cores = total - lc_cores
    elif placement is Placement.SIBLING_THREADS:
        lc_cores = min(lc.required_cores(load, target_fraction=0.85),
                       total - 1)
        ant_cores = lc_cores  # spinloops on the siblings of the LC cores
        lc_ht_share = 1.0
    elif placement is Placement.ONE_CORE:
        lc_cores = total - 1
        ant_cores = 1
    elif placement is Placement.SHARED_CORES:
        # OS isolation baseline: both containers may run anywhere; CFS
        # grants the BE task roughly the cycles the LC task leaves idle.
        lc_cores = total
        lc_busy = lc.qps_at(load) * lc.base_service_ms / 1000.0
        ant_cores = max(1, total - math.ceil(lc_busy))
        lc_ht_share = 0.5
        cfs = CfsSharedCoreModel()
        sched_delay_ms = cfs.tail_delay_ms(
            lc_cpu_demand=lc_busy,
            be_cpu_demand=float(ant_cores),
            cores=total,
            lc_share=0.98)
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unhandled placement {placement}")

    lc_alloc = Allocation(cores_by_socket=spread_cores(lc_cores, spec),
                          ht_share_fraction=lc_ht_share)
    ant_alloc = Allocation(cores_by_socket=spread_cores(ant_cores, spec))

    demands = [lc.demand(load, lc_alloc), antagonist.demand(ant_alloc)]
    usages = server.resolve(demands)
    tail_ms = lc.tail_latency_ms(
        load, usages[lc.name],
        link_utilization=server.telemetry.link_utilization,
        sched_delay_ms=sched_delay_ms)
    return CharacterizationResult(
        lc_name=lc.name,
        antagonist=antagonist_spec.label,
        load=load,
        slo_fraction=lc.slo_fraction(tail_ms),
        lc_cores=lc_cores,
        antagonist_cores=ant_cores,
    )


def baseline_cell(lc: LatencyCriticalWorkload, load: float,
                  spec: Optional[MachineSpec] = None) -> float:
    """SLO fraction for the LC workload alone on the whole machine."""
    spec = spec or lc.spec
    server = Server(spec)
    alloc = Allocation(cores_by_socket=spread_cores(spec.total_cores, spec))
    usages = server.resolve([lc.demand(load, alloc)])
    tail_ms = lc.tail_latency_ms(
        load, usages[lc.name],
        link_utilization=server.telemetry.link_utilization)
    return lc.slo_fraction(tail_ms)


@dataclass
class ColocationResult:
    """Steady-state summary of one controlled colocation run."""

    lc_name: str
    be_name: str
    load: float
    max_slo_fraction: float
    mean_slo_fraction: float
    mean_be_throughput: float
    mean_emu: float
    mean_dram_gbps: float
    mean_cpu_utilization: float
    mean_power_fraction: float
    mean_lc_net_gbps: float
    mean_be_net_gbps: float
    history: SimHistory


def run_colocation(lc_name: str, be_name: str, load: float,
                   duration_s: float = 900.0,
                   warmup_s: float = 240.0,
                   spec: Optional[MachineSpec] = None,
                   config: Optional[HeraclesConfig] = None,
                   dram_model: Optional[LcDramBandwidthModel] = None,
                   trace: Optional[LoadTrace] = None,
                   seed: int = 0,
                   controller_factory=None) -> ColocationResult:
    """Run one LC x BE colocation under Heracles (or a custom controller).

    Args:
        controller_factory: callable(sim) -> controller; defaults to
            :meth:`HeraclesController.for_sim`.  Pass a baseline factory
            for comparison runs.
    """
    spec = spec or default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    be = make_be_workload(be_name, spec)
    sim = ColocationSim(lc=lc, trace=trace or ConstantLoad(load), be=be,
                        spec=spec, seed=seed)
    if controller_factory is None:
        HeraclesController.for_sim(sim, config=config, dram_model=dram_model)
    else:
        sim.attach_controller(controller_factory(sim))
    history = sim.run(duration_s)
    # One timestamp-filter pass over the columnar store covers every
    # steady-state mean the figures report.
    means = history.means(
        ("slo_fraction", "be_throughput_norm", "emu", "dram_bw_gbps",
         "cpu_utilization", "power_fraction_of_tdp", "lc_net_gbps",
         "be_net_gbps"), skip_s=warmup_s)
    return ColocationResult(
        lc_name=lc_name,
        be_name=be_name,
        load=load,
        max_slo_fraction=history.max_slo_fraction(skip_s=warmup_s),
        mean_slo_fraction=means["slo_fraction"],
        mean_be_throughput=means["be_throughput_norm"],
        mean_emu=means["emu"],
        mean_dram_gbps=means["dram_bw_gbps"],
        mean_cpu_utilization=means["cpu_utilization"],
        mean_power_fraction=means["power_fraction_of_tdp"],
        mean_lc_net_gbps=means["lc_net_gbps"],
        mean_be_net_gbps=means["be_net_gbps"],
        history=history,
    )


def colocation_sweep(lc_name: str,
                     be_names: Sequence[str],
                     loads: Sequence[float],
                     duration_s: float = 900.0,
                     warmup_s: float = 240.0,
                     spec: Optional[MachineSpec] = None,
                     config: Optional[HeraclesConfig] = None,
                     seed: int = 0,
                     processes: Optional[int] = None
                     ) -> Dict[str, List[ColocationResult]]:
    """Run the (BE task x load) colocation grid through the sweep runner.

    Every grid cell is an independent :func:`run_colocation`; the cells
    fan out across a process pool (see :func:`repro.sim.runner.
    run_sweep`) and the offline DRAM model is profiled exactly once in
    the parent and shipped to the workers, instead of once per cell.

    Returns:
        ``{be_name: [ColocationResult per load, in load order]}``.
    """
    spec = spec or default_machine_spec()
    model = memoized_dram_model(lc_name, spec)
    points = [
        ((), dict(lc_name=lc_name, be_name=be_name, load=load,
                  duration_s=duration_s, warmup_s=warmup_s, spec=spec,
                  config=config, dram_model=model, seed=seed))
        for be_name in be_names for load in loads
    ]
    results = run_sweep(run_colocation, points, processes=processes,
                        star=True)
    grid: Dict[str, List[ColocationResult]] = {}
    for result in results:
        grid.setdefault(result.be_name, []).append(result)
    return grid
