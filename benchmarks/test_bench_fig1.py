"""Regenerates Figure 1: the interference characterization table."""

from conftest import regenerate

from repro.experiments.fig1_interference import run_fig1
from repro.workloads.traces import load_sweep


def test_bench_fig1_interference_table(benchmark):
    tables = regenerate(benchmark, run_fig1, loads=load_sweep())
    for table in tables.values():
        print()
        print(table.render())
    # Headline structure of the paper's table.
    for name, table in tables.items():
        brain = table.rows["brain"]
        assert sum(v > 1.0 for v in brain) >= len(brain) - 2, name
        assert max(table.rows["DRAM"]) > 3.0, name
