"""Tests for the transcribed paper data and the agreement scorer."""

import pytest

from repro.experiments.fig1_interference import run_fig1
from repro.experiments.paper_data import (PAPER_FIG1, AgreementReport,
                                          figure1_agreement)
from repro.workloads.traces import load_sweep


class TestTranscription:
    def test_structure(self):
        assert set(PAPER_FIG1) == {"websearch", "ml_cluster", "memkeyval"}
        for rows in PAPER_FIG1.values():
            assert len(rows) == 8
            for values in rows.values():
                assert len(values) == 19

    def test_known_cells(self):
        # Spot checks against the paper text.
        ws = PAPER_FIG1["websearch"]
        assert ws["CPU power"][0] == pytest.approx(1.90)   # 190% @ 5%
        assert ws["Network"][0] == pytest.approx(0.35)     # 35% @ 5%
        assert ws["LLC (big)"][17] == pytest.approx(1.23)  # 123% @ 90%
        kv = PAPER_FIG1["memkeyval"]
        assert kv["HyperThread"][0] == pytest.approx(0.26)
        assert kv["Network"][6] == pytest.approx(3.5)      # >300% @ 35%

    def test_saturated_cells_use_sentinel(self):
        brain = PAPER_FIG1["memkeyval"]["brain"]
        assert all(v == pytest.approx(3.5) for v in brain[2:])


class TestAgreement:
    @pytest.fixture(scope="class")
    def report(self):
        tables = run_fig1(loads=load_sweep())
        return figure1_agreement(tables)

    def test_overall_agreement_at_least_two_thirds(self, report):
        assert isinstance(report, AgreementReport)
        assert report.total == 456  # 3 workloads x 8 rows x 19 loads
        assert report.fraction >= 0.66

    def test_perfect_rows(self, report):
        # The rows that define the paper's headline claims agree
        # essentially cell for cell.
        assert report.per_row[("websearch", "brain")] >= 18
        assert report.per_row[("websearch", "Network")] >= 18
        assert report.per_row[("ml_cluster", "DRAM")] >= 18
        assert report.per_row[("memkeyval", "brain")] >= 18
