"""Tests for repro.hardware.memory: DRAM sharing and saturation."""

import pytest

from repro.hardware.memory import MemoryController, MemoryDemand


@pytest.fixture
def controller():
    return MemoryController(capacity_gbps=60.0)


class TestResolution:
    def test_undersubscribed_everyone_satisfied(self, controller):
        res = controller.resolve([MemoryDemand("a", 10.0),
                                  MemoryDemand("b", 20.0)])
        assert res.total_achieved_gbps == pytest.approx(30.0)
        assert res.grant_for("a").achieved_gbps == pytest.approx(10.0)
        assert res.utilization == pytest.approx(0.5)

    def test_oversubscribed_proportional_scaling(self, controller):
        res = controller.resolve([MemoryDemand("a", 60.0),
                                  MemoryDemand("b", 60.0)])
        assert res.total_achieved_gbps == pytest.approx(60.0)
        assert res.grant_for("a").achieved_gbps == pytest.approx(30.0)
        assert res.grant_for("b").achieved_gbps == pytest.approx(30.0)

    def test_unknown_task_raises(self, controller):
        res = controller.resolve([MemoryDemand("a", 1.0)])
        with pytest.raises(KeyError):
            res.grant_for("nope")

    def test_negative_demand_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.resolve([MemoryDemand("a", -1.0)])

    def test_empty_demands(self, controller):
        res = controller.resolve([])
        assert res.total_achieved_gbps == pytest.approx(0.0)
        assert res.utilization == pytest.approx(0.0)


class TestDelayCurve:
    def test_flat_below_knee(self, controller):
        assert controller.delay_factor(0.3, 18.0) < 1.05
        assert controller.delay_factor(0.7, 42.0) < 1.06

    def test_knee_then_cliff(self, controller):
        # The paper's central empirical shape: mild until the knee,
        # rapid degradation past it.
        d90 = controller.delay_factor(0.90, 54.0)
        d95 = controller.delay_factor(0.95, 57.0)
        d99 = controller.delay_factor(0.99, 59.4)
        assert 1.05 < d90 < 1.5
        assert d90 < d95 < d99
        assert d99 > 2.0

    def test_safe_at_heracles_dram_limit(self, controller):
        # Heracles holds DRAM at <= 90% of peak; the substrate must keep
        # latency tolerable there or the paper's operating point would
        # be unreachable.
        assert controller.delay_factor(0.90, 54.0) < 1.35

    def test_oversubscription_keeps_growing(self, controller):
        mild = controller.delay_factor(1.0, 70.0)
        severe = controller.delay_factor(1.0, 200.0)
        assert severe > mild

    def test_monotone_in_utilization(self, controller):
        utils = [0.1 * i for i in range(1, 11)]
        factors = [controller.delay_factor(u, u * 60.0) for u in utils]
        assert factors == sorted(factors)

    def test_delay_applies_to_all_requestors(self, controller):
        # A streaming antagonist slows even tasks with tiny demands
        # (how memkeyval gets hurt by DRAM interference, §3.3).
        res = controller.resolve([MemoryDemand("hog", 100.0),
                                  MemoryDemand("memkeyval", 2.0)])
        assert res.grant_for("memkeyval").access_delay_factor > 2.0


class TestCounters:
    def test_measured_bw(self, controller):
        controller.resolve([MemoryDemand("a", 25.0)])
        assert controller.measured_bw_gbps() == pytest.approx(25.0)
        assert controller.measured_utilization() == pytest.approx(25.0 / 60.0)

    def test_per_task_bw(self, controller):
        controller.resolve([MemoryDemand("a", 25.0),
                            MemoryDemand("b", 5.0)])
        per_task = controller.per_task_bw_gbps()
        assert per_task == {"a": pytest.approx(25.0), "b": pytest.approx(5.0)}


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            MemoryController(0.0)

    def test_rejects_bad_knee(self):
        with pytest.raises(ValueError):
            MemoryController(60.0, delay_knee=1.5)
