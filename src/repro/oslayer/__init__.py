"""Simulated OS mechanisms: cgroups, CFS, NUMA binding, traffic control.

These are the *software* isolation mechanisms Heracles coordinates
(cpuset pinning and HTB network shaping) plus the CFS time-sharing model
used by the OS-isolation baseline the paper measures against.
"""

from .cgroups import Cgroup, CgroupManager
from .numa import NumaBinding, NumaPolicy
from .scheduler import CfsModelParams, CfsSharedCoreModel
from .traffic_control import HtbClass, HtbQdisc

__all__ = [
    "Cgroup", "CgroupManager",
    "NumaBinding", "NumaPolicy",
    "CfsModelParams", "CfsSharedCoreModel",
    "HtbClass", "HtbQdisc",
]
