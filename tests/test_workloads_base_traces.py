"""Tests for repro.workloads.base helpers and load traces."""

import pytest

from repro.hardware.spec import default_machine_spec
from repro.workloads.base import (Allocation, cache_demand_for, pack_cores,
                                  split_across_sockets, spread_cores)
from repro.workloads.traces import (ConstantLoad, DiurnalTrace, ReplayTrace,
                                    StepLoad, load_sweep,
                                    websearch_cluster_trace)


@pytest.fixture(scope="module")
def spec():
    return default_machine_spec()


class TestAllocation:
    def test_totals(self):
        alloc = Allocation(cores_by_socket={0: 4, 1: 6})
        assert alloc.total_cores == 10
        assert alloc.sockets_in_use() == [0, 1]

    def test_with_cores_copies(self):
        alloc = Allocation(cores_by_socket={0: 4})
        updated = alloc.with_cores({0: 8})
        assert alloc.total_cores == 4
        assert updated.total_cores == 8

    def test_empty_sockets_skipped(self):
        alloc = Allocation(cores_by_socket={0: 0, 1: 3})
        assert alloc.sockets_in_use() == [1]


class TestCoreSplitting:
    def test_spread_even(self, spec):
        assert spread_cores(10, spec) == {0: 5, 1: 5}

    def test_spread_odd(self, spec):
        assert spread_cores(9, spec) == {0: 5, 1: 4}

    def test_spread_bounds(self, spec):
        with pytest.raises(ValueError):
            spread_cores(-1, spec)
        with pytest.raises(ValueError):
            spread_cores(37, spec)

    def test_pack_fills_socket_zero_first(self, spec):
        assert pack_cores(5, spec) == {0: 5, 1: 0}
        assert pack_cores(20, spec) == {0: 18, 1: 2}

    def test_pack_bounds(self, spec):
        with pytest.raises(ValueError):
            pack_cores(40, spec)

    def test_split_across_sockets_weighted(self):
        alloc = Allocation(cores_by_socket={0: 3, 1: 1})
        split = split_across_sockets(8.0, alloc)
        assert split == {0: pytest.approx(6.0), 1: pytest.approx(2.0)}

    def test_split_empty_alloc(self):
        assert split_across_sockets(8.0, Allocation()) == {}

    def test_cache_demand_split(self, spec):
        alloc = Allocation(cores_by_socket={0: 2, 1: 2})
        demands = cache_demand_for("t", alloc, spec, hot_mb=8.0,
                                   bulk_mb=16.0, access_gbps=10.0,
                                   hot_access_fraction=0.5, bulk_reuse=0.8)
        assert demands[0].hot_mb == pytest.approx(4.0)
        assert demands[1].bulk_mb == pytest.approx(8.0)
        assert demands[0].access_gbps == pytest.approx(5.0)


class TestConstantLoad:
    def test_value(self):
        assert ConstantLoad(0.4).load_at(999) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLoad(1.5)


class TestStepLoad:
    def test_steps(self):
        trace = StepLoad(times_s=[0, 100, 200], loads=[0.2, 0.8, 0.4])
        assert trace.load_at(50) == pytest.approx(0.2)
        assert trace.load_at(150) == pytest.approx(0.8)
        assert trace.load_at(500) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLoad(times_s=[0], loads=[0.2, 0.3])
        with pytest.raises(ValueError):
            StepLoad(times_s=[], loads=[])
        with pytest.raises(ValueError):
            StepLoad(times_s=[100, 0], loads=[0.2, 0.3])
        with pytest.raises(ValueError):
            StepLoad(times_s=[0], loads=[1.5])


class TestDiurnalTrace:
    def test_starts_at_trough(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1000)
        assert trace.load_at(0) == pytest.approx(0.2)

    def test_peaks_at_half_period(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1000)
        assert trace.load_at(500) == pytest.approx(0.9)

    def test_never_exceeds_high(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1000,
                             noise_sigma=0.1, seed=3)
        loads = [trace.clipped(t) for t in range(0, 1000, 7)]
        assert max(loads) <= 0.9 + 1e-9
        assert min(loads) >= 0.0

    def test_noise_is_deterministic(self):
        a = DiurnalTrace(noise_sigma=0.05, seed=5)
        b = DiurnalTrace(noise_sigma=0.05, seed=5)
        assert a.load_at(12345) == pytest.approx(b.load_at(12345))

    def test_noise_is_deterministic_out_of_order(self):
        a = DiurnalTrace(noise_sigma=0.05, seed=5)
        late = a.load_at(5000)
        a.load_at(100)
        assert a.load_at(5000) == pytest.approx(late)

    def test_noise_is_autocorrelated(self):
        # Adjacent minutes must not jump several sigma at once.
        trace = DiurnalTrace(low=0.5, high=0.5, period_s=1e9,
                             noise_sigma=0.02, seed=9)
        noises = [trace.load_at(60.0 * b) - 0.5 for b in range(1, 200)]
        jumps = [abs(b - a) for a, b in zip(noises, noises[1:])]
        assert max(jumps) < 0.04  # << 4 sigma

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(low=0.9, high=0.2)
        with pytest.raises(ValueError):
            DiurnalTrace(period_s=0)


class TestReplayTrace:
    def test_replay_and_hold(self):
        trace = ReplayTrace(samples=[0.1, 0.5, 0.9], interval_s=10)
        assert trace.load_at(0) == pytest.approx(0.1)
        assert trace.load_at(15) == pytest.approx(0.5)
        assert trace.load_at(1000) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayTrace(samples=[])
        with pytest.raises(ValueError):
            ReplayTrace(samples=[2.0])
        with pytest.raises(ValueError):
            ReplayTrace(samples=[0.5], interval_s=0)


class TestHelpers:
    def test_load_sweep_default_is_papers_axis(self):
        sweep = load_sweep()
        assert len(sweep) == 19
        assert sweep[0] == pytest.approx(0.05)
        assert sweep[-1] == pytest.approx(0.95)

    def test_load_sweep_validation(self):
        with pytest.raises(ValueError):
            load_sweep(points=1)

    def test_cluster_trace_bounds(self):
        trace = websearch_cluster_trace()
        assert trace.low == pytest.approx(0.20)
        assert trace.high == pytest.approx(0.90)
        assert trace.period_s == pytest.approx(12 * 3600)


class TestSpikeOverlay:
    def test_spike_lifts_but_never_sheds(self):
        from repro.workloads.traces import LoadSpike, SpikeOverlay
        trace = SpikeOverlay(ConstantLoad(0.6),
                             [LoadSpike(at_s=10, duration_s=5, load=0.9),
                              LoadSpike(at_s=12, duration_s=1, load=0.3)])
        assert trace.load_at(5) == pytest.approx(0.6)
        assert trace.load_at(10) == pytest.approx(0.9)
        assert trace.load_at(12) == pytest.approx(0.9)  # max wins
        assert trace.load_at(14.999) == pytest.approx(0.9)
        assert trace.load_at(15) == pytest.approx(0.6)

    def test_overlay_wraps_any_base(self):
        from repro.workloads.traces import LoadSpike, SpikeOverlay
        base = StepLoad(times_s=[0, 20], loads=[0.2, 0.8])
        trace = SpikeOverlay(base, [LoadSpike(5, 10, 0.5)])
        assert trace.load_at(0) == pytest.approx(0.2)
        assert trace.load_at(7) == pytest.approx(0.5)
        assert trace.load_at(25) == pytest.approx(0.8)  # base above spike

    def test_validation(self):
        from repro.workloads.traces import LoadSpike, SpikeOverlay
        with pytest.raises(ValueError):
            LoadSpike(at_s=-1, duration_s=5, load=0.5)
        with pytest.raises(ValueError):
            LoadSpike(at_s=0, duration_s=0, load=0.5)
        with pytest.raises(ValueError):
            LoadSpike(at_s=0, duration_s=5, load=1.5)
        with pytest.raises(ValueError):
            SpikeOverlay(ConstantLoad(0.5), [])
