"""Lower a validated :class:`ScenarioSpec` onto the engine stack.

The compiler is the bridge between the declarative layer and the
execution layers below it.  Each scenario *shape* lowers differently:

* ``members`` — one :class:`~repro.sim.engine.ColocationSim` (single
  member, scalar engine) or one :class:`~repro.sim.batch.
  BatchColocationSim` (several members, or ``engine: batch``), with a
  real controller attached per member and injections wrapped around it;
* ``sweep`` — a (LC x BE x load) grid of independent constant-load
  runs fanned across :func:`repro.sim.runner.run_sweep` via the
  experiment layer's :func:`~repro.experiments.common.colocation_sweep`
  (so a sweep scenario is numerically identical to the hand-wired
  Figure 4-7 harness, offline-profiling memoization included);
* ``cluster`` — managed/baseline :class:`~repro.cluster.cluster.
  WebsearchCluster` arms dispatched through the same runner;
* ``fleet`` — a sharded multi-cluster :class:`~repro.fleet.simulator.
  ShardedFleetSim`, every cluster partitioned into homogeneous shards
  fanned across the runner's process pool;
* ``schedule`` — the same sharded fleet run with the per-leaf slack
  view collected, then the :mod:`repro.sched` scheduler placing the
  spec's best-effort job queue over it (an empty queue leaves the
  fleet/cluster histories bit-identical to the plain ``fleet`` run).

Typical use::

    from repro.scenarios import load_scenario, compile_scenario

    spec = load_scenario("examples/scenarios/three_way_be_mix.yaml")
    result = compile_scenario(spec).run()
    print(result.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..baselines import SCENARIO_BASELINES, baseline_for_sim
from ..cluster.cluster import ClusterHistory, run_cluster_arm
from ..core.controller import HeraclesController
from ..experiments.common import (ColocationResult, baseline_cell,
                                  colocation_sweep)
from ..fleet import ClusterPlan, FleetResult, ShardedFleetSim
from ..obs.trace import concat_payloads
from ..sched import ScheduleOutcome, run_schedule, tco_summary
from ..sim.actuators import Actuators
from ..sim.batch import BatchColocationSim
from ..sim.chaos import ChaosEvent
from ..sim.checkpoint import (checkpoint_step, completed_steps, load_engine,
                              run_ticks, save_engine,
                              trace_checkpoint_save)
from ..sim.engine import ColocationSim, Controller, SimHistory
from ..sim.runner import memoized_dram_model, run_sweep
from ..workloads.best_effort import make_be_workload
from ..workloads.latency_critical import make_lc_workload
from .spec import InjectionSpec, ScenarioError, ScenarioSpec


def _chaos_event(injection: InjectionSpec) -> ChaosEvent:
    """Lower one injection to the engines' shared event type."""
    return ChaosEvent(
        at_s=injection.at_s, action=injection.action,
        value=injection.value,
        members=None if injection.leaf is None else (injection.leaf,))


class InjectionSchedule:
    """Controller wrapper that fires timed injections, then delegates.

    Implements the engine's ``Controller`` protocol.  Pending
    injections whose timestamp has arrived are applied to the member's
    :class:`Actuators` *before* the wrapped controller's step, so the
    controller reacts to the injected state within the same tick — an
    antagonist arriving mid-run looks to Heracles exactly like a real
    task launch.
    """

    def __init__(self, actuators: Actuators,
                 injections: List[InjectionSpec],
                 inner: Optional[Controller] = None):
        self._actuators = actuators
        self._inner = inner
        self._pending = sorted(injections, key=lambda inj: inj.at_s)
        self._applied: List[InjectionSpec] = []

    @property
    def applied(self) -> List[InjectionSpec]:
        """Injections fired so far (oldest first)."""
        return list(self._applied)

    def step(self, now_s: float) -> None:
        """Fire due injections, then step the wrapped controller."""
        while self._pending and self._pending[0].at_s <= now_s:
            injection = self._pending.pop(0)
            self._apply(injection)
            self._applied.append(injection)
        if self._inner is not None:
            self._inner.step(now_s)

    def _apply(self, injection: InjectionSpec) -> None:
        """Translate one injection into an actuator call."""
        a = self._actuators
        if injection.action == "enable_be":
            a.enable_be()
        elif injection.action == "disable_be":
            a.disable_be()
        elif injection.action == "set_be_cores":
            a.set_be_cores(int(injection.value))
        elif injection.action == "set_llc_split":
            a.set_llc_split(int(injection.value))
        elif injection.action == "set_be_net_ceil":
            a.set_be_net_ceil(injection.value)
        else:  # pragma: no cover - spec validation is exhaustive
            raise ScenarioError(f"unknown injection action "
                                f"{injection.action!r}")


@dataclass
class MemberResult:
    """One member's run summary plus its full tick history."""

    lc: str
    be: Optional[str]
    controller: str
    seed: int
    history: SimHistory
    warmup_s: float

    def worst_window_slo(self) -> float:
        """Worst 60 s windowed SLO fraction past the warm-up."""
        return self.history.worst_window_slo(skip_s=self.warmup_s)

    def mean_emu(self) -> float:
        """Mean effective machine utilization past the warm-up."""
        return self.history.mean_emu(skip_s=self.warmup_s)

    def max_slo_fraction(self) -> float:
        """Worst single-tick SLO fraction past the warm-up."""
        return self.history.max_slo_fraction(skip_s=self.warmup_s)

    def mean_be_throughput(self) -> float:
        """Mean normalized BE throughput past the warm-up."""
        return self.history.mean("be_throughput_norm", skip_s=self.warmup_s)


@dataclass
class SweepGrid:
    """One LC workload's (BE x load) sweep results."""

    lc_name: str
    loads: List[float]
    baseline_slo: List[float] = field(default_factory=list)
    results: Dict[str, List[ColocationResult]] = field(default_factory=dict)


@dataclass
class ScenarioResult:
    """Everything a compiled scenario produced.

    Which fields are populated depends on the scenario shape:
    ``members`` fills :attr:`members`; ``sweep`` fills :attr:`sweeps`
    (one :class:`SweepGrid` per LC task, in spec order); ``cluster``
    fills :attr:`cluster_arms` and :attr:`root_slo_ms`; ``fleet``
    fills :attr:`fleet`.
    """

    spec: ScenarioSpec
    kind: str
    members: List[MemberResult] = field(default_factory=list)
    sweeps: Dict[str, SweepGrid] = field(default_factory=dict)
    cluster_arms: Dict[str, ClusterHistory] = field(default_factory=dict)
    root_slo_ms: Optional[float] = None
    fleet: Optional[FleetResult] = None
    schedule: Optional[ScheduleOutcome] = None
    trace: Optional[Dict[str, object]] = None
    profile: Optional[Dict[str, float]] = None

    def to_dict(self) -> Dict[str, object]:
        """Machine-readable run summary (the CLI's ``--json`` payload).

        Plain JSON types only — strings, ints, floats, lists, dicts —
        and deterministic for a given spec + seed, so two runs of the
        same scenario compare with ``==`` on the parsed document.  The
        shape-specific section mirrors what :meth:`render` prints:
        ``members`` for member scenarios, ``sweeps``/``arms`` for grid
        shapes, the fleet summary (plus the schedule/TCO roll-up) for
        fleet-shaped runs.
        """
        spec = self.spec
        out: Dict[str, object] = {
            "scenario": spec.name,
            "kind": self.kind,
            "duration_s": float(spec.duration_s),
            "warmup_s": float(spec.warmup_s),
            "seed": int(spec.seed),
        }
        skip = spec.warmup_s
        if self.kind in ("single", "batch"):
            out["members"] = [
                {"lc": m.lc, "be": m.be, "controller": m.controller,
                 "seed": int(m.seed),
                 "worst_window_slo": m.worst_window_slo(),
                 "max_slo_fraction": m.max_slo_fraction(),
                 "mean_emu": m.mean_emu(),
                 "mean_be_throughput": m.mean_be_throughput()}
                for m in self.members]
        elif self.kind == "sweep":
            out["sweeps"] = {
                lc: {"loads": [float(x) for x in grid.loads],
                     "baseline_slo": [float(x) for x in grid.baseline_slo],
                     "worst_window_slo": {
                         be: [r.history.worst_window_slo(skip_s=skip)
                              for r in cells]
                         for be, cells in grid.results.items()}}
                for lc, grid in self.sweeps.items()}
        elif self.kind == "cluster":
            out["root_slo_ms"] = float(self.root_slo_ms)
            out["arms"] = {
                arm: {"max_root_slo_fraction":
                      history.max_root_slo_fraction(skip_s=skip),
                      "mean_emu": history.mean_emu(skip_s=skip)}
                for arm, history in self.cluster_arms.items()}
        if self.fleet is not None:
            out["fleet"] = self.fleet.summary(skip_s=skip)
        if self.schedule is not None:
            out["schedule"] = self.schedule.summary()
            out["tco"] = tco_summary(self.schedule, self.fleet,
                                     skip_s=skip)
        return out

    def render(self) -> str:
        """Human-readable report (what the CLI prints)."""
        if self.kind == "sweep":
            return self._render_sweep()
        if self.kind == "cluster":
            return self._render_cluster()
        if self.kind == "fleet":
            return self._render_fleet()
        if self.kind == "schedule":
            return self._render_schedule()
        return self._render_members()

    def _render_members(self) -> str:
        lines = [f"scenario {self.spec.name}: {len(self.members)} member(s),"
                 f" {self.spec.duration_s:.0f} s"
                 f" (warm-up {self.spec.warmup_s:.0f} s)"]
        header = (f"{'#':>2}  {'LC':<10} {'BE':<12} {'controller':<20} "
                  f"{'worst60s':>9} {'maxSLO':>7} {'EMU':>6} {'BE-tput':>8}")
        lines.append(header)
        lines.append("-" * len(header))
        for i, m in enumerate(self.members):
            lines.append(
                f"{i:>2}  {m.lc:<10} {m.be or '-':<12} {m.controller:<20} "
                f"{m.worst_window_slo():>9.0%} {m.max_slo_fraction():>7.0%} "
                f"{m.mean_emu():>6.0%} {m.mean_be_throughput():>8.0%}")
        return "\n".join(lines) + "\n"

    def _render_sweep(self) -> str:
        from ..analysis.tables import render_load_series_table
        chunks = []
        for lc_name, grid in self.sweeps.items():
            series: Dict[str, List[float]] = {}
            if grid.baseline_slo:
                series["baseline"] = grid.baseline_slo
            for be_name, cells in grid.results.items():
                series[be_name] = [
                    r.history.worst_window_slo(skip_s=self.spec.warmup_s)
                    for r in cells]
            chunks.append(render_load_series_table(
                series, grid.loads,
                title=f"{lc_name}: worst-case tail latency "
                      f"(fraction of SLO)"))
            chunks.append("")
        return "\n".join(chunks) + "\n" if chunks else ""

    def _render_cluster(self) -> str:
        skip = self.spec.warmup_s
        lines = [f"root SLO: {self.root_slo_ms:.1f} ms"]
        labels = {"managed": "Heracles", "baseline": "baseline"}
        for arm, history in self.cluster_arms.items():
            lines.append(
                f"{labels.get(arm, arm)}: max latency "
                f"{history.max_root_slo_fraction(skip_s=skip) * 100:.0f}% "
                f"of SLO, mean EMU "
                f"{history.mean_emu(skip_s=skip) * 100:.0f}%")
        return "\n".join(lines) + "\n"

    def _render_fleet(self) -> str:
        skip = self.spec.warmup_s
        summary = self.fleet.summary(skip_s=skip)
        lines = [f"fleet {self.spec.name}: {summary['leaves']} leaves "
                 f"across {len(self.fleet.clusters)} cluster(s), "
                 f"{self.spec.duration_s:.0f} s "
                 f"(warm-up {self.spec.warmup_s:.0f} s)"]
        header = (f"{'cluster':<14} {'leaves':>6} {'mode':<8} "
                  f"{'maxSLO':>7} {'worst60s':>9} {'EMU':>6} {'minEMU':>7}")
        lines.append(header)
        lines.append("-" * len(header))
        for outcome in self.fleet.clusters:
            stats = summary["clusters"][outcome.name]
            mode = "managed" if outcome.managed else "baseline"
            lines.append(
                f"{outcome.name:<14} {outcome.leaves:>6} {mode:<8} "
                f"{stats['max_root_slo_fraction']:>7.0%} "
                f"{stats['worst_window_slo']:>9.0%} "
                f"{stats['mean_emu']:>6.0%} {stats['min_emu']:>7.0%}")
        lines.append(
            f"fleet EMU {summary['fleet_emu']:.0%} "
            f"(min {summary['min_fleet_emu']:.0%}), load-weighted root "
            f"latency {summary['weighted_root_latency_ms']:.1f} ms")
        return "\n".join(lines) + "\n"

    def _render_schedule(self) -> str:
        lines = [self._render_fleet().rstrip("\n")]
        outcome = self.schedule
        s = outcome.summary()
        lines.append(
            f"scheduler [{outcome.policy}]: {s['completed']}/{s['jobs']} "
            f"jobs completed ({s['rejected']} rejected, "
            f"{s['evictions']} evictions), goodput "
            f"{s['goodput_core_h']:.1f} core-h, credited "
            f"{s['credited_core_h']:.1f} of {s['harvested_core_h']:.1f} "
            f"harvested core-h")
        tco = tco_summary(outcome, self.fleet, skip_s=self.spec.warmup_s)
        lines.append(
            f"scheduled BE adds {tco['harvested_utilization']:.1%} fleet "
            f"utilization over the {tco['lc_utilization']:.1%} LC "
            f"baseline -> {tco['tco_gain']:+.1%} throughput/TCO")
        return "\n".join(lines) + "\n"


class CompiledScenario:
    """A spec lowered onto the engine stack, ready to run.

    ``kind`` is one of ``single`` (scalar engine), ``batch``, ``sweep``,
    ``cluster``, ``fleet`` or ``schedule``.  :meth:`build` materializes
    the simulation object
    for member scenarios (useful for stepping manually or attaching
    extra instrumentation); :meth:`run` executes the whole scenario and
    returns a :class:`ScenarioResult`.
    """

    def __init__(self, spec: ScenarioSpec):
        spec.validate()
        self.spec = spec
        if spec.sweep is not None:
            self.kind = "sweep"
        elif spec.cluster is not None:
            self.kind = "cluster"
        elif spec.fleet is not None:
            self.kind = "fleet"
        elif spec.schedule is not None:
            self.kind = "schedule"
        elif len(spec.members) > 1 or spec.engine == "batch":
            self.kind = "batch"
        else:
            self.kind = "single"
        self.machine = spec.server.to_machine_spec()

    # -- member scenarios ----------------------------------------------

    def build(self) -> Union[ColocationSim, BatchColocationSim]:
        """Materialize the simulation for a member scenario.

        Returns a fully wired :class:`ColocationSim` (kind ``single``)
        or :class:`BatchColocationSim` (kind ``batch``) with
        controllers attached and injections scheduled, but not yet run.

        Raises:
            ScenarioError: for sweep/cluster scenarios, which lower to
                runner grids instead of a single simulation object.
        """
        spec = self.spec
        spill_dir = spec.checkpoint.spill_dir \
            if spec.checkpoint is not None else None
        if self.kind == "single":
            member = spec.members[0]
            sim = ColocationSim(
                lc=make_lc_workload(member.lc, self.machine),
                trace=member.trace.build(default_seed=spec.member_seed(0)),
                be=(make_be_workload(member.be, self.machine)
                    if member.be else None),
                spec=self.machine,
                seed=spec.member_seed(0),
                spill_dir=spill_dir)
            self._attach(sim, member.lc, member.be,
                         spec.member_controller(0), index=0)
            chaos = [_chaos_event(inj) for inj in spec.injections
                     if inj.is_chaos]
            if chaos:
                sim.set_chaos_events(chaos)
            return sim
        if self.kind == "batch":
            lcs = [make_lc_workload(m.lc, self.machine)
                   for m in spec.members]
            bes = [make_be_workload(m.be, self.machine) if m.be else None
                   for m in spec.members]
            traces = [
                m.trace.build(default_seed=spec.member_seed(i))
                for i, m in enumerate(spec.members)]
            seeds = [spec.member_seed(i) for i in range(len(spec.members))]
            batch = BatchColocationSim(
                lc=lcs, trace=traces, bes=bes, spec=self.machine,
                seeds=seeds, n=len(spec.members), record_history=True,
                spill_dir=spill_dir)
            for i, member in enumerate(spec.members):
                self._attach(batch.members[i], member.lc, member.be,
                             spec.member_controller(i), index=i)
            chaos = [_chaos_event(inj) for inj in spec.injections
                     if inj.is_chaos]
            if chaos:
                batch.set_chaos_events(chaos)
            return batch
        raise ScenarioError(
            f"scenario {spec.name!r} is a {self.kind} scenario; it lowers "
            f"to a runner grid — call run() instead of build()")

    def _attach(self, sim, lc_name: str, be_name: Optional[str],
                controller: str, index: int = 0) -> None:
        """Attach the member's controller and injection schedule."""
        if controller == "heracles" and be_name is not None:
            model = memoized_dram_model(lc_name, self.machine)
            HeraclesController.for_sim(sim, dram_model=model)
        elif controller in SCENARIO_BASELINES:
            baseline_for_sim(controller, sim)
        # "none" (and "heracles" without a BE to manage): no controller.
        # Legacy actuator injections keep their end-of-tick controller
        # wrapper (timing preserved for existing scenarios), filtered by
        # the optional leaf target; chaos actions lower to engine-level
        # events (start-of-tick, see repro.sim.chaos) in build().
        legacy = [inj for inj in self.spec.injections
                  if not inj.is_chaos
                  and (inj.leaf is None or inj.leaf == index)]
        if legacy:
            sim.attach_controller(InjectionSchedule(
                sim.actuators, legacy, inner=sim.controller))

    # -- execution ------------------------------------------------------

    def run(self, processes: Optional[int] = None) -> ScenarioResult:
        """Execute the scenario and collect results.

        Args:
            processes: worker processes for sweep/cluster fan-out
                (``None`` = auto via :func:`repro.sim.runner.
                default_jobs`; ignored by member scenarios, which are
                single simulations).

        Returns:
            A populated :class:`ScenarioResult`.
        """
        if self.kind == "sweep":
            return self._run_sweep(processes)
        if self.kind == "cluster":
            return self._run_cluster(processes)
        if self.kind == "fleet":
            return self._run_fleet(processes)
        if self.kind == "schedule":
            return self._run_schedule(processes)
        return self._run_members()

    def _run_members(self) -> ScenarioResult:
        spec = self.spec
        ckpt = spec.checkpoint
        if ckpt is None:
            sim = self.build()
            sim.run(spec.duration_s, dt_s=spec.dt_s)
        else:
            sim = self._run_members_checkpointed()
        result = ScenarioResult(spec=spec, kind=self.kind)
        sims = sim.members if isinstance(sim, BatchColocationSim) else [sim]
        for i, member_sim in enumerate(sims):
            member = spec.members[i]
            result.members.append(MemberResult(
                lc=member.lc, be=member.be,
                controller=spec.member_controller(i),
                seed=spec.member_seed(i),
                history=member_sim.history,
                warmup_s=spec.warmup_s))
        if sim._obs_trace is not None:
            result.trace = concat_payloads([sim._obs_trace.payload()])
        if sim._obs_prof is not None:
            result.profile = sim._obs_prof.as_dict()
        return result

    def _run_members_checkpointed(self):
        """Run a member scenario in checkpoint-aware tick segments.

        Segment boundaries are integer ticks (never duration halves —
        see :mod:`repro.sim.checkpoint`), so a resumed or snapshotting
        run replays the exact tick sequence a straight ``sim.run``
        executes and stays bit-identical to it.
        """
        spec = self.spec
        ckpt = spec.checkpoint
        expect = "batch" if self.kind == "batch" else "single"
        total = int(round(spec.duration_s / spec.dt_s))
        if ckpt.resume is not None:
            restored = load_engine(ckpt.resume, expect_kind=expect)
            sim = restored.sim
            done = completed_steps(sim, spec.dt_s)
            if done > total:
                raise ScenarioError(
                    f"checkpoint.resume: snapshot holds {done} completed "
                    f"tick(s), past this scenario's {total}-tick run "
                    f"(duration_s={spec.duration_s}, dt_s={spec.dt_s})")
        else:
            sim = self.build()
            done = 0
        if ckpt.save is not None:
            k_save = checkpoint_step(ckpt.at_s, spec.duration_s, spec.dt_s)
            if k_save <= done:
                raise ScenarioError(
                    f"checkpoint.at_s: snapshot at {ckpt.at_s} s lands at "
                    f"or before the resumed snapshot; a resumed run can "
                    f"only checkpoint further ahead")
            run_ticks(sim, k_save - done, spec.dt_s)
            # Emitted before the archive is written so the pickled sink
            # already carries the event and a resumed run replays it.
            trace_checkpoint_save(getattr(sim, "_obs_trace", None),
                                  sim.time_s, k_save)
            save_engine(sim, ckpt.save, kind=expect)
            done = k_save
        run_ticks(sim, total - done, spec.dt_s)
        return sim

    def _run_sweep(self, processes: Optional[int]) -> ScenarioResult:
        spec = self.spec
        sweep = spec.sweep
        result = ScenarioResult(spec=spec, kind="sweep")
        if spec.controller != "heracles":
            raise ScenarioError(
                "sweep scenarios currently run under Heracles; use a "
                "'members' scenario for baseline-controller studies")
        for lc_name in sweep.lc_tasks:
            grid = SweepGrid(lc_name=lc_name, loads=list(sweep.loads))
            if sweep.include_baseline:
                lc = make_lc_workload(lc_name, self.machine)
                grid.baseline_slo = [
                    baseline_cell(lc, load, self.machine)
                    for load in sweep.loads]
            grid.results = colocation_sweep(
                lc_name, sweep.be_tasks, sweep.loads,
                duration_s=spec.duration_s, warmup_s=spec.warmup_s,
                spec=self.machine, seed=spec.seed, processes=processes)
            result.sweeps[lc_name] = grid
        return result

    def _build_fleet(self, fleet_spec) -> ShardedFleetSim:
        """Lower a :class:`FleetSpec` onto the sharded fleet simulator.

        Shared by the ``fleet`` and ``schedule`` shapes, so a scheduled
        fleet is constructed *identically* to the plain fleet it wraps
        — the root of the empty-queue bit-identity gate.
        """
        spec = self.spec
        # Fleet injections all lower to engine-level chaos events (the
        # fleet path has no per-member controller wrappers): a
        # cluster-less injection reaches every cluster; a leaf target
        # stays cluster-local.  Schedule order is preserved per cluster
        # — it is the engines' tie-break for same-timestamp events.
        plans = [
            ClusterPlan(
                name=cluster.name,
                leaves=cluster.leaves,
                trace=cluster.trace.build(
                    default_seed=fleet_spec.cluster_seed(i, spec.seed)),
                lc_name=cluster.lc,
                be_mix=cluster.be_mix,
                spec=(None if cluster.server.is_default()
                      else cluster.server.to_machine_spec()),
                managed=cluster.managed,
                seed=fleet_spec.cluster_seed(i, spec.seed),
                events=tuple(
                    _chaos_event(inj) for inj in spec.injections
                    if inj.cluster is None or inj.cluster == cluster.name))
            for i, cluster in enumerate(fleet_spec.clusters)
        ]
        return ShardedFleetSim(
            plans, shard_leaves=fleet_spec.shard_leaves,
            record_period_s=fleet_spec.record_period_s,
            engine=fleet_spec.engine)

    def _fleet_run_kwargs(self) -> Dict[str, Optional[str]]:
        """Checkpoint/resume/spill kwargs for a fleet-shaped run."""
        ckpt = self.spec.checkpoint
        if ckpt is None:
            return {}
        return dict(checkpoint_dir=ckpt.save, checkpoint_at_s=ckpt.at_s,
                    resume_from=ckpt.resume, spill_dir=ckpt.spill_dir)

    def _run_fleet(self, processes: Optional[int]) -> ScenarioResult:
        spec = self.spec
        fleet = self._build_fleet(spec.fleet)
        outcome = fleet.run(spec.duration_s, dt_s=spec.dt_s,
                            processes=processes,
                            **self._fleet_run_kwargs())
        return ScenarioResult(spec=spec, kind="fleet", fleet=outcome,
                              trace=outcome.trace,
                              profile=outcome.profile)

    def _run_schedule(self, processes: Optional[int]) -> ScenarioResult:
        spec = self.spec
        schedule = spec.schedule
        fleet = self._build_fleet(schedule.fleet)
        outcome = fleet.run(spec.duration_s, dt_s=spec.dt_s,
                            processes=processes,
                            slack_epoch_s=schedule.epoch_s,
                            **self._fleet_run_kwargs())
        scheduled = run_schedule(outcome.slack, schedule.expand_jobs(),
                                 policy=schedule.policy,
                                 queue_limit=schedule.queue_limit)
        payloads = [p for p in (outcome.trace, scheduled.trace)
                    if p is not None]
        return ScenarioResult(spec=spec, kind="schedule", fleet=outcome,
                              schedule=scheduled,
                              trace=(concat_payloads(payloads)
                                     if payloads else None),
                              profile=outcome.profile)

    def _run_cluster(self, processes: Optional[int]) -> ScenarioResult:
        spec = self.spec
        cluster = spec.cluster
        machine = None if spec.server.is_default() else self.machine
        arms = [
            dict(leaves=cluster.leaves, spec=machine,
                 trace=cluster.trace.build(default_seed=spec.seed),
                 managed=(arm == "managed"), seed=spec.seed,
                 engine=cluster.engine, duration=spec.duration_s,
                 dt_s=spec.dt_s)
            for arm in cluster.arms
        ]
        outcomes = run_sweep(run_cluster_arm, arms, processes=processes)
        result = ScenarioResult(spec=spec, kind="cluster")
        for arm, (history, root_slo_ms) in zip(cluster.arms, outcomes):
            result.cluster_arms[arm] = history
            result.root_slo_ms = root_slo_ms
        return result


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Validate and lower a scenario spec (see :class:`CompiledScenario`)."""
    return CompiledScenario(spec)


def run_scenario(spec: ScenarioSpec,
                 processes: Optional[int] = None) -> ScenarioResult:
    """Compile and run a scenario in one call."""
    return compile_scenario(spec).run(processes=processes)
