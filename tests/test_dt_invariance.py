"""dt-correctness property tests: reported metrics are tick-invariant.

The telemetry refactor retired a class of bugs where recording or
reporting code silently assumed a 1-second tick (window widths in
samples, record cadences in ticks, 1-tick-per-second run loops).
These tests pin the retirement as a *property*: the paper-facing
aggregates — worst 60-second windowed SLO, mean EMU, cluster record
cadence — are invariant (up to window rounding) across
``dt_s ∈ {0.5, 1, 5}`` on the scalar, batched, and cluster paths.

The workloads are built noise-free (tail-noise draws happen once per
tick, so a run at ``dt_s=0.5`` would otherwise consume a different
number of draws than the same run at ``dt_s=5`` and the comparison
would measure noise, not dt-correctness).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.static import optimistic_static
from repro.cluster.cluster import WebsearchCluster
from repro.cluster.coordinator import CoordinatedWebsearchCluster
from repro.fleet import ClusterPlan, ShardedFleetSim
from repro.hardware.spec import default_machine_spec
from repro.sim.batch import BatchColocationSim
from repro.sim.engine import ColocationSim
from repro.sim.runner import JOBS_ENV
from repro.workloads.best_effort import make_be_workload
from repro.workloads.latency_critical import (LC_PROFILES,
                                              LatencyCriticalWorkload)
from repro.workloads.traces import (ConstantLoad, DiurnalTrace,
                                    websearch_cluster_trace)

DTS = (0.5, 1.0, 5.0)


def quiet_lc(spec=None):
    """websearch with tail noise disabled (see module docstring)."""
    spec = spec or default_machine_spec()
    profile = replace(LC_PROFILES["websearch"], noise_sigma=0.0)
    return LatencyCriticalWorkload(profile, spec)


def smooth_trace():
    """A noiseless diurnal trace (deterministic at every timestamp)."""
    return DiurnalTrace(low=0.2, high=0.8, period_s=300.0,
                        noise_sigma=0.0, seed=0)


class TestScalarDtInvariance:
    def _run(self, dt_s, trace, be=None, controller=None, duration=600.0):
        spec = default_machine_spec()
        sim = ColocationSim(lc=quiet_lc(spec), trace=trace,
                            be=be and make_be_workload(be, spec),
                            spec=spec, seed=0)
        if controller is not None:
            sim.attach_controller(controller(sim.actuators))
        sim.run(duration, dt_s=dt_s)
        return sim.history

    def test_worst_window_slo_invariant(self):
        worst = [self._run(dt, smooth_trace()).worst_window_slo(skip_s=120.0)
                 for dt in DTS]
        for value in worst[1:]:
            assert value == pytest.approx(worst[0], rel=0.02)

    def test_mean_emu_invariant_at_steady_state(self):
        means = [
            self._run(dt, ConstantLoad(0.5), be="brain",
                      controller=optimistic_static,
                      duration=300.0).mean_emu(skip_s=60.0)
            for dt in DTS
        ]
        # Post-warmup ticks are identical at any dt: exact invariance.
        for value in means[1:]:
            assert value == pytest.approx(means[0], rel=1e-9)
        assert means[0] > 0.5  # BE actually colocated

    def test_max_slo_fraction_invariant_at_steady_state(self):
        maxima = [
            self._run(dt, ConstantLoad(0.6),
                      duration=300.0).max_slo_fraction(skip_s=60.0)
            for dt in DTS
        ]
        for value in maxima[1:]:
            assert value == pytest.approx(maxima[0], rel=1e-9)


class TestBatchDtInvariance:
    def _run(self, dt_s, trace, duration=600.0):
        spec = default_machine_spec()
        batch = BatchColocationSim(
            lc=quiet_lc(spec), trace=trace,
            bes=[make_be_workload("brain", spec), None], spec=spec,
            seeds=[0, 1])
        for member in batch.members[:1]:
            member.attach_controller(optimistic_static(member.actuators))
        batch.run(duration, dt_s=dt_s)
        return batch

    def test_member_metrics_invariant(self):
        runs = [self._run(dt, ConstantLoad(0.5), duration=300.0)
                for dt in DTS]
        for which in range(2):
            emu = [r.members[which].history.mean_emu(skip_s=60.0)
                   for r in runs]
            worst = [r.members[which].history.worst_window_slo(skip_s=60.0)
                     for r in runs]
            for value in emu[1:]:
                assert value == pytest.approx(emu[0], rel=1e-9)
            for value in worst[1:]:
                assert value == pytest.approx(worst[0], rel=1e-9)

    def test_batch_matches_scalar_at_coarse_dt(self):
        """The dt plumbing is identical across engines (dt_s=5)."""
        spec = default_machine_spec()
        sim = ColocationSim(lc=quiet_lc(spec), trace=smooth_trace(),
                            be=make_be_workload("brain", spec), spec=spec,
                            seed=0)
        sim.attach_controller(optimistic_static(sim.actuators))
        sim.run(300.0, dt_s=5.0)

        batch = self._run(5.0, smooth_trace(), duration=300.0)
        member = batch.members[0].history
        np.testing.assert_allclose(member.column("slo_fraction"),
                                   sim.history.column("slo_fraction"),
                                   rtol=1e-9, atol=1e-12)
        assert member.worst_window_slo(skip_s=60.0) == pytest.approx(
            sim.history.worst_window_slo(skip_s=60.0), rel=1e-12)


class TestChaosDtInvariance:
    """Chaos events honour the tick size: an event at ``at_s`` fires at
    the same simulated time whatever the dt, so the degraded run's
    aggregates are tick-invariant — and the engines stay bit-identical
    at every tick size."""

    #: Every chaos action with event times on the coarsest (5 s) grid.
    ACTIONS = {
        "leaf_crash": ((60.0, "leaf_crash", None),
                       (160.0, "leaf_restart", None)),
        "straggler": ((60.0, "straggler", 0.55), (160.0, "straggler", 1.0)),
        "power_cap": ((60.0, "power_cap", 0.6), (160.0, "power_cap", 1.0)),
        "partition": ((60.0, "partition", 45.0),),
        "actuator": ((20.0, "disable_be", None), (80.0, "enable_be", None),
                     (100.0, "set_be_cores", 2), (130.0, "set_llc_split", 3),
                     (160.0, "set_be_net_ceil", 2.5)),
    }

    def _events(self, action):
        from repro.sim.chaos import ChaosEvent
        return [ChaosEvent(at_s, name, value)
                for at_s, name, value in self.ACTIONS[action]]

    def _run(self, dt_s, action, duration=300.0):
        spec = default_machine_spec()
        batch = BatchColocationSim(
            lc=quiet_lc(spec), trace=ConstantLoad(0.5),
            bes=[make_be_workload("brain", spec), None], spec=spec,
            seeds=[0, 1])
        member = batch.members[0]
        member.attach_controller(optimistic_static(member.actuators))
        batch.set_chaos_events(
            [e.retarget((0,)) for e in self._events(action)])
        batch.run(duration, dt_s=dt_s)
        return batch

    @pytest.mark.parametrize("action", sorted(ACTIONS))
    def test_member_metrics_invariant(self, action):
        runs = [self._run(dt, action) for dt in DTS]
        emu = [r.members[0].history.mean_emu(skip_s=60.0) for r in runs]
        worst = [r.members[0].history.max_slo_fraction(skip_s=60.0)
                 for r in runs]
        for value in emu[1:]:
            assert value == pytest.approx(emu[0], rel=1e-9)
        for value in worst[1:]:
            assert value == pytest.approx(worst[0], rel=1e-9)

    @pytest.mark.parametrize("dt_s", DTS)
    def test_engines_identical_at_every_dt(self, dt_s):
        """Sharded and mega runs of a chaos schedule are bit-identical
        whatever the tick size."""
        from repro.sim.chaos import ChaosEvent
        events = (ChaosEvent(30.0, "leaf_crash", members=(0,)),
                  ChaosEvent(45.0, "straggler", 0.6, members=(1,)),
                  ChaosEvent(60.0, "power_cap", 0.75),
                  ChaosEvent(80.0, "partition", 25.0, members=(2,)),
                  ChaosEvent(120.0, "leaf_restart", members=(0,)))

        def run(engine, shard_leaves=1):
            fleet = ShardedFleetSim(
                [ClusterPlan(name="c", leaves=3, trace=ConstantLoad(0.6),
                             seed=0, events=events)],
                shard_leaves=shard_leaves, engine=engine)
            return fleet.run(180.0, dt_s=dt_s, processes=1)

        sharded = run("sharded")
        mega = run("mega", shard_leaves=3)
        for name in ("t_s", "load", "root_latency_ms",
                     "root_slo_fraction", "emu"):
            assert np.array_equal(
                sharded.cluster("c").history.column(name),
                mega.cluster("c").history.column(name)), (
                f"dt_s={dt_s}: column {name!r} diverged across engines")
        assert sharded.summary() == mega.summary()


class TestClusterDtInvariance:
    def _run(self, dt_s, duration=240.0):
        cluster = WebsearchCluster(leaves=2, trace=ConstantLoad(0.6),
                                   seed=0, managed=False)
        cluster.run(duration, dt_s=dt_s)
        return cluster

    def test_record_cadence_invariant(self):
        runs = [self._run(dt) for dt in DTS]
        counts = [len(r.history) for r in runs]
        assert counts == [counts[0]] * len(DTS)
        base = runs[0].history.times()
        for run in runs[1:]:
            np.testing.assert_allclose(run.history.times(), base)

    def test_mean_emu_invariant(self):
        emus = [self._run(dt).history.mean_emu() for dt in DTS]
        for value in emus[1:]:
            assert value == pytest.approx(emus[0], rel=1e-9)
        mins = [self._run(dt).history.min_emu() for dt in DTS]
        for value in mins[1:]:
            assert value == pytest.approx(mins[0], rel=1e-9)


class TestFleetDtInvariance:
    """The sharded fleet path reports dt-invariant metrics too."""

    def _run(self, dt_s, duration=240.0, shard_leaves=1):
        fleet = ShardedFleetSim(
            [ClusterPlan(name="c", leaves=2, trace=ConstantLoad(0.6),
                         managed=False, seed=0)],
            shard_leaves=shard_leaves)
        return fleet.run(duration, dt_s=dt_s, processes=1)

    def test_record_cadence_invariant(self):
        runs = [self._run(dt) for dt in DTS]
        counts = [len(r.telemetry) for r in runs]
        assert counts == [counts[0]] * len(DTS)
        base = runs[0].telemetry.times()
        for run in runs[1:]:
            np.testing.assert_allclose(run.telemetry.times(), base)

    def test_fleet_emu_invariant(self):
        means = [self._run(dt).telemetry.mean_fleet_emu() for dt in DTS]
        for value in means[1:]:
            assert value == pytest.approx(means[0], rel=1e-9)
        minima = [self._run(dt).telemetry.min_fleet_emu() for dt in DTS]
        for value in minima[1:]:
            assert value == pytest.approx(minima[0], rel=1e-9)

    def test_matches_cluster_driver_at_every_dt(self):
        """Fleet dt plumbing is the cluster driver's, bit for bit."""
        for dt in DTS:
            cluster = WebsearchCluster(leaves=2, trace=ConstantLoad(0.6),
                                       seed=0, managed=False)
            cluster.run(240.0, dt_s=dt)
            fleet = self._run(dt)
            history = fleet.cluster("c").history
            for name in ("t_s", "load", "root_latency_ms",
                         "root_slo_fraction", "emu"):
                assert np.array_equal(history.column(name),
                                      cluster.history.column(name)), (
                    f"dt_s={dt}: column {name!r} diverged")


class TestFleetSeedDeterminism:
    """Same spec + seed => identical fleet summary, run over run."""

    def _summary(self, seed=7, shard_leaves=3):
        fleet = ShardedFleetSim(
            [ClusterPlan(name="a", leaves=4,
                         trace=websearch_cluster_trace(seed=seed),
                         seed=seed),
             ClusterPlan(name="b", leaves=3,
                         trace=websearch_cluster_trace(seed=seed + 1),
                         managed=False, seed=seed + 1)],
            shard_leaves=shard_leaves)
        return fleet.run(120.0, processes=None).summary(skip_s=30.0)

    def test_repeated_runs_identical(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        assert self._summary() == self._summary()

    def test_identical_across_job_counts(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        serial = self._summary()
        monkeypatch.setenv(JOBS_ENV, "4")
        assert self._summary() == serial

    def test_seed_actually_matters(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "1")
        assert self._summary(seed=7) != self._summary(seed=8)


class TestCoordinatorDt:
    """CoordinatedWebsearchCluster.run honours the tick size."""

    def _coordinated(self):
        return CoordinatedWebsearchCluster(leaves=2,
                                           trace=ConstantLoad(0.5),
                                           seed=0, managed=False)

    def test_non_unit_dt_simulates_full_duration(self):
        coordinated = self._coordinated()
        coordinated.run(90.0, dt_s=0.5)
        assert coordinated.cluster.time_s == pytest.approx(90.0)
        assert coordinated.cluster._tick_index == 180

    def test_fractional_duration_not_truncated(self):
        coordinated = self._coordinated()
        coordinated.run(45.5, dt_s=0.5)
        assert coordinated.cluster.time_s == pytest.approx(45.5)

    def test_coarse_dt_steps_targets_at_time_cadence(self):
        coordinated = self._coordinated()
        coordinated.run(120.0, dt_s=5.0)
        # The coordinator's 30-second period elapsed four times.
        assert coordinated.cluster.time_s == pytest.approx(120.0)
        assert coordinated.coordinator._last_step_s is not None

    def test_rejects_bad_dt(self):
        coordinated = self._coordinated()
        with pytest.raises(ValueError):
            coordinated.run(10.0, dt_s=0.0)

    def test_default_dt_matches_legacy(self):
        coordinated = self._coordinated()
        history = coordinated.run(60.0)
        assert coordinated.cluster.time_s == pytest.approx(60.0)
        assert len(history) >= 1
