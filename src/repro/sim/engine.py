"""The colocation simulation engine.

:class:`ColocationSim` runs one server hosting one LC workload and
(optionally) one BE task group under the control of a pluggable policy.
Each 1-second tick:

1. The load trace produces the LC offered load.
2. Workloads translate (load, allocation) into hardware demands.
3. The server resolves all shared-resource contention.
4. The LC model reports tail latency; the BE model reports throughput.
5. Monitors record; the controller (if any) observes counters/monitors
   and actuates placement changes that take effect next tick.

Controllers implement a single method::

    def step(self, now_s: float) -> None

and receive their observation/actuation surfaces at construction time,
mirroring how the real Heracles runs as a separate per-server process
polling counters and poking cgroups/MSRs/tc.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Protocol

import numpy as np

from ..hardware.counters import CounterBank
from ..hardware.power import SocketPowerModel
from ..metrics.history import ColumnarHistory
from ..hardware.server import Server, TaskUsage
from ..hardware.spec import MachineSpec
from ..obs.profile import make_profiler
from ..obs.trace import make_sink
from ..workloads.best_effort import (BestEffortWorkload,
                                     reference_throughput_units)
from ..workloads.latency_critical import LatencyCriticalWorkload
from ..workloads.traces import LoadTrace
from .actuators import Actuators
from .chaos import PARTITION_TAIL_SLO_MULT, sort_events, trace_chaos_event
from .monitors import LatencyMonitor, ThroughputMonitor


class Controller(Protocol):
    """Anything that can manage the colocation (Heracles, baselines)."""

    def step(self, now_s: float) -> None:
        """Observe and (maybe) actuate; called once per simulation tick."""


@dataclass
class TickRecord:
    """Everything observable about one simulation tick."""

    t_s: float
    load: float
    tail_latency_ms: float
    slo_fraction: float
    be_throughput_norm: float
    be_cores: int
    be_llc_ways: int
    be_dvfs_cap_ghz: Optional[float]
    be_net_ceil_gbps: Optional[float]
    be_enabled: bool
    emu: float
    dram_bw_gbps: float
    dram_utilization: float
    cpu_utilization: float
    power_fraction_of_tdp: float
    lc_net_gbps: float
    be_net_gbps: float
    link_utilization: float


class TickSeriesMixin:
    """The aggregate-metric surface shared by every tick history.

    Mixed into :class:`SimHistory` (columnar storage) and the batched
    engine's per-member views; every method delegates to the one
    :class:`~repro.metrics.windows.WindowedMetrics` implementation, so
    no history can grow its own divergent (or fixed-tick) metric code
    again.
    """

    def max_slo_fraction(self, skip_s: float = 0.0) -> float:
        """Worst single-tick SLO fraction after ``skip_s`` seconds."""
        return self.metrics.maximum("slo_fraction", skip_s=skip_s)

    def dt_s(self) -> float:
        """Tick interval of the recorded run, derived from timestamps.

        Records are appended once per engine tick, so the spacing of
        consecutive timestamps *is* the tick size; falls back to 1 s
        when the history is too short to tell.
        """
        return self.metrics.dt_s()

    def worst_window_slo(self, window_s: float = 60.0,
                         skip_s: float = 0.0,
                         dt_s: Optional[float] = None) -> float:
        """Worst windowed SLO fraction — the paper's reporting metric.

        "Since the SLO is defined over 60-second windows, we report the
        worst-case latency that was seen during experiments" (§5.1): the
        tail over a window is estimated from all of that window's
        samples, so the per-window value is the mean of the per-tick
        tail estimates, and the figure reports the max across windows.

        The window width in samples is derived from the actual tick
        size (``window_s / dt_s``), so the metric stays a true
        ``window_s``-second window for any tick size; ``dt_s`` may be
        passed explicitly to override the derived spacing.
        """
        return self.metrics.worst_window("slo_fraction", window_s=window_s,
                                         skip_s=skip_s, dt_s=dt_s)

    def mean_emu(self, skip_s: float = 0.0) -> float:
        """Mean effective machine utilization after ``skip_s`` seconds."""
        return self.metrics.mean("emu", skip_s=skip_s)

    def mean(self, name: str, skip_s: float = 0.0) -> float:
        """Mean of any record field after ``skip_s`` seconds."""
        return self.metrics.mean(name, skip_s=skip_s)

    def means(self, names, skip_s: float = 0.0) -> Dict[str, float]:
        """Means of several record fields in one timestamp-filter pass."""
        return self.metrics.means(names, skip_s=skip_s)


class SimHistory(TickSeriesMixin, ColumnarHistory):
    """Column-oriented record of a whole run.

    Storage is one :class:`~repro.metrics.columns.ColumnStore` column
    per :class:`TickRecord` field (geometrically grown, O(1) amortized
    appends); ``history.records`` materializes the dataclass list on
    demand for inspection, and :meth:`~repro.metrics.history.
    RecordSeries.column` is a zero-copy view for vectorized consumers.
    """

    RECORD_TYPE = TickRecord
    INT_FIELDS = frozenset({"be_cores", "be_llc_ways"})
    BOOL_FIELDS = frozenset({"be_enabled"})
    OPTIONAL_FIELDS = frozenset({"be_dvfs_cap_ghz", "be_net_ceil_gbps"})


class ColocationSim:
    """One server, one LC workload, one (optional) BE task group."""

    def __init__(self,
                 lc: LatencyCriticalWorkload,
                 trace: LoadTrace,
                 be: Optional[BestEffortWorkload] = None,
                 spec: Optional[MachineSpec] = None,
                 seed: int = 0,
                 min_lc_cores: int = 1,
                 spill_dir: Optional[str] = None):
        self.lc = lc
        self.be = be
        self.trace = trace
        self.server = Server(spec or lc.spec)
        self.counters = CounterBank(self.server)
        self.actuators = Actuators(self.server, min_lc_cores=min_lc_cores)
        self.latency_monitor = LatencyMonitor()
        self.rng = np.random.default_rng(seed)
        self.time_s = 0.0
        # spill_dir bounds resident history memory by chunked
        # spill-to-disk (see repro.metrics.columns); each sim needs its
        # own directory.
        self.history = SimHistory(spill_dir=spill_dir)
        self.controller: Optional[Controller] = None
        # Observability (off by default: both stay None unless the
        # REPRO_TRACE / REPRO_PROFILE env toggles are set, and the
        # whole disabled path is these attributes' None checks).
        self._obs_trace = make_sink()
        self._obs_prof = make_profiler()
        if be is not None:
            reference = reference_throughput_units(be)
            self.be_monitor: Optional[ThroughputMonitor] = ThroughputMonitor(
                reference)
        else:
            self.be_monitor = None

    def attach_controller(self, controller: Controller) -> None:
        """Install the per-tick controller (Heracles or a baseline)."""
        self.controller = controller

    # ------------------------------------------------------------------
    # Chaos events
    # ------------------------------------------------------------------

    def set_chaos_events(self, events) -> None:
        """Install a chaos event schedule (see :mod:`repro.sim.chaos`).

        Events fire at the start of the first tick whose time reaches
        their ``at_s``, with the exact semantics the batched engines
        replay bit-for-bit (the module docstring of
        :mod:`repro.sim.chaos` is the contract).  A single-member sim
        accepts only events targeting member 0 (or untargeted ones).
        """
        events = sort_events(events)
        for event in events:
            if event.members is not None and tuple(event.members) not in (
                    (), (0,)):
                raise ValueError(
                    f"chaos event targets members {event.members}; a "
                    f"scalar sim has only member 0")
        self._chaos = events
        self._chaos_pos = 0
        self._chaos_alive = True
        self._chaos_derate = 1.0
        self._chaos_part_until = -np.inf
        self._chaos_stock_socket = self.server.spec.socket

    #: Chaos schedule; None (the default) keeps every chaos branch cold.
    _chaos = None
    #: Observability defaults (class-level, so engines restored from
    #: pre-observability pickles keep working with everything off).
    _obs_trace = None
    _obs_prof = None
    _obs_base = 0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def obs_set_base(self, base: int) -> None:
        """Set the *global* (fleet-wide) index of this sim's one member.

        Trace events carry global member indices so merged traces are
        invariant under any shard partition; a standalone sim keeps the
        default base 0.
        """
        self._obs_base = int(base)

    def _obs_actuator_state(self):
        """The traced actuator tuple (pure reads, never perturbing)."""
        act = self.actuators
        return (bool(act.be_enabled), int(act.be_cores),
                int(act.be_llc_ways), act.be_dvfs_cap_ghz,
                act.be_net_ceil_gbps)

    def _obs_emit_decisions(self, pre, record) -> None:
        """Emit one event per actuator the controller changed this tick.

        ``pre`` is the actuator tuple gathered before the controller
        stepped (but after chaos resolution — chaos mutations carry
        their own events); the triggering signals attached are the
        tick's observed SLO fraction and offered load.
        """
        post = self._obs_actuator_state()
        if post == pre:
            return
        sink = self._obs_trace
        member = self._obs_base
        t_s, slo, load = record.t_s, record.slo_fraction, record.load
        for kind, old, new in zip(("be_gate", "cores", "llc", "dvfs",
                                   "net_ceil"), pre, post):
            if old is new or old == new:
                continue
            sink.emit(t_s, member, "controller", kind,
                      a=(None if old is None else float(old)),
                      b=(None if new is None else float(new)),
                      slo=slo, load=load)

    def _chaos_apply(self) -> None:
        """Fire due events, then pin a crashed member's BE off."""
        events = self._chaos
        while (self._chaos_pos < len(events)
               and events[self._chaos_pos].at_s <= self.time_s):
            event = events[self._chaos_pos]
            self._chaos_pos += 1
            if event.members is not None and not event.members:
                continue
            if self._obs_trace is not None:
                trace_chaos_event(self._obs_trace, self.time_s, event,
                                  (self._obs_base,))
            action = event.action
            if action == "leaf_crash":
                self._chaos_alive = False
            elif action == "leaf_restart":
                self._chaos_alive = True
                self.actuators.disable_be()  # rejoin cold
            elif action == "straggler":
                self._chaos_derate = float(event.value)
                # DRAM capacity derates with the member (stuck DIMM
                # training, thermal throttling of the memory bus).
                stock_bw = self._chaos_stock_socket.dram_bw_gbps
                for controller in self.server.memory.values():
                    controller.capacity_gbps = stock_bw * self._chaos_derate
            elif action == "power_cap":
                capped = dataclasses.replace(
                    self._chaos_stock_socket,
                    tdp_watts=(self._chaos_stock_socket.tdp_watts
                               * float(event.value)))
                self.server.power_model = SocketPowerModel(capped)
            elif action == "partition":
                self._chaos_part_until = max(
                    self._chaos_part_until, event.at_s + float(event.value))
            elif action == "enable_be":
                self.actuators.enable_be()
            elif action == "disable_be":
                self.actuators.disable_be()
            elif action == "set_be_cores":
                self.actuators.set_be_cores(int(event.value))
            elif action == "set_llc_split":
                self.actuators.set_llc_split(int(event.value))
            elif action == "set_be_net_ceil":
                self.actuators.set_be_net_ceil(event.value)
        if not self._chaos_alive:
            # Re-pinned every tick: a controller that re-enabled BE at
            # the end of the last tick is overruled while the leaf is
            # down, so a restart always rejoins cold.
            self.actuators.disable_be()

    # ------------------------------------------------------------------

    def tick(self, dt_s: float = 1.0) -> TickRecord:
        """Advance the simulation by one interval."""
        if dt_s <= 0:
            raise ValueError("dt must be positive")
        prof = self._obs_prof
        mark = perf_counter() if prof is not None else 0.0
        if self._chaos is not None:
            self._chaos_apply()
        if prof is not None:
            now = perf_counter()
            prof.add("chaos", now - mark)
            mark = now
        pre_actuators = (self._obs_actuator_state()
                         if self._obs_trace is not None else None)
        load = self.trace.clipped(self.time_s)
        chaos_parted = False
        if self._chaos is not None:
            chaos_parted = (self._chaos_alive
                            and self.time_s < self._chaos_part_until)
            if not self._chaos_alive or chaos_parted:
                # Crashed: the leaf serves nothing.  Partitioned: load
                # is held at the fan-out root, none of it arrives.
                load = 0.0

        lc_alloc = self.actuators.lc_allocation()
        demands = [self.lc.demand(load, lc_alloc)]
        be_alloc = self.actuators.be_allocation()
        be_running = (self.be is not None and self.actuators.be_enabled
                      and be_alloc.total_cores > 0)
        if be_running:
            demands.append(self.be.demand(be_alloc))

        usages = self.server.resolve(demands)
        lc_usage = usages[self.lc.name]
        link_util = self.server.telemetry.link_utilization
        if self._chaos is not None:
            # Straggler derate: x1.0 is a bitwise identity, so healthy
            # runs are untouched.  Mutating the resolved TaskUsage is
            # what CounterBank.freq_of reads, matching the batched
            # engines' derated frequency columns.
            lc_usage.freq_ghz = lc_usage.freq_ghz * self._chaos_derate
            if be_running:
                be = usages[self.be.name]
                be.freq_ghz = be.freq_ghz * self._chaos_derate

        tail_ms = self.lc.tail_latency_ms(load, lc_usage,
                                          link_utilization=link_util,
                                          rng=self.rng)
        if self._chaos is not None:
            # Overrides come after the noise draw so the member's RNG
            # stream advances identically whether or not it is down.
            if chaos_parted:
                tail_ms = (self.lc.profile.slo_latency_ms
                           * PARTITION_TAIL_SLO_MULT)
            if not self._chaos_alive:
                tail_ms = 0.0
        self.latency_monitor.record(self.time_s, tail_ms, load)

        be_norm = 0.0
        be_usage: Optional[TaskUsage] = None
        if be_running:
            be_usage = usages[self.be.name]
            units = self.be.throughput_units(be_usage)
            self.be_monitor.record(units * dt_s, dt_s)
            be_norm = self.be_monitor.last_normalized

        if prof is not None:
            now = perf_counter()
            prof.add("physics", now - mark)
            mark = now
        telemetry = self.server.telemetry
        if self._chaos is None:
            power_fraction = telemetry.power_fraction_of_tdp
        else:
            # Under a power_cap the telemetry denominator is the capped
            # TDP; histories (like the batched engines) keep reporting
            # against the *stock* design power.
            power_fraction = telemetry.total_power_watts / (
                self._chaos_stock_socket.tdp_watts * self.server.spec.sockets)
        record = TickRecord(
            t_s=self.time_s,
            load=load,
            tail_latency_ms=tail_ms,
            slo_fraction=self.lc.slo_fraction(tail_ms),
            be_throughput_norm=be_norm,
            be_cores=self.actuators.be_cores,
            be_llc_ways=self.actuators.be_llc_ways,
            be_dvfs_cap_ghz=self.actuators.be_dvfs_cap_ghz,
            be_net_ceil_gbps=self.actuators.be_net_ceil_gbps,
            be_enabled=self.actuators.be_enabled,
            emu=load + be_norm,
            dram_bw_gbps=telemetry.total_dram_gbps,
            dram_utilization=telemetry.max_dram_utilization,
            cpu_utilization=telemetry.cpu_utilization,
            power_fraction_of_tdp=power_fraction,
            lc_net_gbps=lc_usage.net_achieved_gbps,
            be_net_gbps=(be_usage.net_achieved_gbps if be_usage else 0.0),
            link_utilization=link_util,
        )
        self.history.append(record)
        if prof is not None:
            now = perf_counter()
            prof.add("telemetry", now - mark)
            mark = now

        if self.controller is not None:
            self.controller.step(self.time_s)
        if pre_actuators is not None:
            self._obs_emit_decisions(pre_actuators, record)
        if prof is not None:
            prof.add("controllers", perf_counter() - mark)

        self.time_s += dt_s
        return record

    def run(self, duration_s: float, dt_s: float = 1.0) -> SimHistory:
        """Run for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        steps = int(round(duration_s / dt_s))
        for _ in range(steps):
            self.tick(dt_s)
        return self.history
