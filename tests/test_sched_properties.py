"""Property-based invariants (hypothesis) for the fleet scheduler.

The PR-5 issue names three invariants; all are checked here over
randomized slack views and job queues:

* **capacity** — no leaf is ever assigned more BE core slots than its
  (previous-epoch) Heracles grant, and no job ever holds more slots
  than its parallelism limit, under *every* policy;
* **work conservation** — under ``slack-greedy``, no usable slot
  (positive predicted harvest, not latched) stays free while some
  queued job could still take one;
* **determinism** — placement and accounting are invariant to the
  order jobs are submitted in (shard-count invariance is covered by
  the real-simulation differential in ``tests/test_sched.py``; the
  scheduler itself only ever sees the slack view, which that harness
  pins bit-identical across plans).

Plus the accounting sanity the benchmark leans on: credited work never
exceeds harvested work, and goodput never exceeds credited work.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import FleetSlackView, LeafSlackView
from repro.sched import BeJob, run_schedule
from repro.sched.policies import Policy, make_policy

EPOCH_S = 60.0


@st.composite
def slack_views(draw, max_epochs=5, max_leaves=6):
    """A random synthetic single-cluster fleet slack view."""
    epochs = draw(st.integers(min_value=1, max_value=max_epochs))
    leaves = draw(st.integers(min_value=1, max_value=max_leaves))
    harvest = draw(st.lists(
        st.lists(st.floats(min_value=0.0, max_value=500.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=leaves, max_size=leaves),
        min_size=epochs, max_size=epochs))
    grant = draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=36),
                 min_size=leaves, max_size=leaves),
        min_size=epochs, max_size=epochs))
    latched = draw(st.lists(
        st.lists(st.booleans(), min_size=leaves, max_size=leaves),
        min_size=epochs, max_size=epochs))
    view = LeafSlackView(
        cluster="prop", total_cores=36,
        epoch_t_s=np.arange(epochs) * EPOCH_S,
        epoch_len_s=np.full(epochs, EPOCH_S),
        harvest_core_s=np.asarray(harvest, dtype=float),
        grant_cores=np.asarray(grant, dtype=float),
        latched=np.asarray(latched, dtype=bool))
    return FleetSlackView([view])


@st.composite
def job_lists(draw, max_jobs=6):
    """A random queue of typed BE jobs with unique names."""
    count = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(count):
        jobs.append(BeJob(
            name=f"job-{i}",
            demand_core_s=draw(st.floats(min_value=1.0, max_value=5000.0,
                                         allow_nan=False)),
            max_cores=draw(st.integers(min_value=1, max_value=12)),
            priority=draw(st.integers(min_value=-2, max_value=2)),
            arrival_s=draw(st.floats(min_value=0.0, max_value=200.0,
                                     allow_nan=False))))
    return jobs


class SpyPolicy(Policy):
    """Wrap a policy and record every (context, placement) pair."""

    def __init__(self, inner):
        self.inner = make_policy(inner)
        self.name = self.inner.name
        self.calls = []

    def place(self, ctx):
        """Delegate, recording the decision for later assertions."""
        placement = self.inner.place(ctx)
        self.calls.append((ctx, placement))
        return placement


class TestCapacityInvariant:
    @given(slack_views(), job_lists(),
           st.sampled_from(["slack-greedy", "round-robin", "static"]))
    @settings(max_examples=80, deadline=None)
    def test_no_leaf_over_grant_no_job_over_parallelism(self, slack, jobs,
                                                        policy):
        spy = SpyPolicy(policy)
        run_schedule(slack, jobs, policy=spy)
        for ctx, placement in spy.calls:
            per_leaf = np.zeros(ctx.leaves)
            for record, slots in zip(ctx.jobs, placement):
                assert sum(slots.values()) <= record.job.max_cores
                for leaf, cores in slots.items():
                    assert cores >= 0
                    per_leaf[leaf] += cores
            # The grant itself never exceeds the machine's cores, so
            # staying under the grant is staying under capacity.
            assert (per_leaf <= ctx.cap + 1e-9).all()
            assert (per_leaf <= 36 + 1e-9).all()


class TestWorkConservation:
    @given(slack_views(), job_lists())
    @settings(max_examples=80, deadline=None)
    def test_greedy_leaves_no_usable_slot_idle(self, slack, jobs):
        spy = SpyPolicy("slack-greedy")
        run_schedule(slack, jobs, policy=spy)
        for ctx, placement in spy.calls:
            usable = (ctx.rate_per_core > 0) & ~ctx.latched
            free = np.where(usable, ctx.cap, 0).astype(float)
            for slots in placement:
                for leaf, cores in slots.items():
                    free[leaf] -= cores
            unsatisfied = [record for record, slots
                           in zip(ctx.jobs, placement)
                           if sum(slots.values()) < record.job.max_cores]
            if unsatisfied:
                assert free.sum() == 0, (
                    "queued jobs below their parallelism limit while "
                    "usable slots stayed free")


class TestDeterminism:
    @given(slack_views(), job_lists(),
           st.sampled_from(["slack-greedy", "round-robin", "static"]),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_submission_order_is_irrelevant(self, slack, jobs, policy, rng):
        shuffled = list(jobs)
        rng.shuffle(shuffled)
        a = run_schedule(slack, jobs, policy=policy)
        b = run_schedule(slack, shuffled, policy=policy)
        assert a.summary() == b.summary()
        for ra, rb in zip(a.jobs, b.jobs):
            assert ra.job == rb.job
            assert ra.state == rb.state
            assert ra.progress_core_s == rb.progress_core_s
            assert ra.completed_at_s == rb.completed_at_s
            assert ra.evictions == rb.evictions

    @given(slack_views(), job_lists(),
           st.sampled_from(["slack-greedy", "round-robin", "static"]))
    @settings(max_examples=40, deadline=None)
    def test_reruns_are_bit_identical(self, slack, jobs, policy):
        a = run_schedule(slack, jobs, policy=policy)
        b = run_schedule(slack, jobs, policy=policy)
        assert a.summary() == b.summary()
        if a.store is not None:
            for field in a.store.fields:
                assert np.array_equal(a.store.column(field),
                                      b.store.column(field))


class TestAccountingBounds:
    @given(slack_views(), job_lists(),
           st.sampled_from(["slack-greedy", "round-robin", "static"]))
    @settings(max_examples=80, deadline=None)
    def test_goodput_credit_harvest_ordering(self, slack, jobs, policy):
        outcome = run_schedule(slack, jobs, policy=policy)
        assert outcome.goodput_core_s <= outcome.credited_core_s + 1e-6
        assert outcome.credited_core_s <= outcome.harvested_core_s + 1e-6
        assert outcome.wasted_core_s >= -1e-6
        # Same quantity accumulated per epoch vs reduced in one sum:
        # equal up to float summation order.
        np.testing.assert_allclose(
            outcome.wasted_core_s + outcome.credited_core_s,
            outcome.harvested_core_s, rtol=1e-9, atol=1e-9)

    @given(slack_views(), job_lists())
    @settings(max_examples=60, deadline=None)
    def test_progress_never_exceeds_demand(self, slack, jobs):
        outcome = run_schedule(slack, jobs)
        for record in outcome.jobs:
            assert record.progress_core_s <= \
                record.job.demand_core_s + 1e-6
