"""repro — a reproduction of *Heracles: Improving Resource Efficiency at
Scale* (Lo et al., ISCA 2015).

Heracles is a per-server feedback controller that safely colocates
best-effort batch tasks with a latency-critical service by coordinating
four isolation mechanisms: cpuset core pinning, CAT cache
way-partitioning, per-core DVFS power shifting, and HTB network traffic
control.  This package implements the controller plus the full simulated
substrate it needs — server hardware, OS mechanisms, workload models,
and the experiment harness that regenerates every figure of the paper.

Quickstart::

    from repro import build_colocation, HeraclesController

    sim = build_colocation("websearch", "brain", load=0.5)
    HeraclesController.for_sim(sim)
    history = sim.run(600)
    print(history.max_slo_fraction(), history.mean_emu())
"""

from __future__ import annotations

from typing import Optional

from .core import (HeraclesConfig, HeraclesController, LcDramBandwidthModel,
                   profile_lc_dram_model)
from .hardware import MachineSpec, Server, default_machine_spec
from .scenarios import (ScenarioSpec, compile_scenario, load_scenario,
                        run_scenario)
from .sim import (BatchColocationSim, ColocationSim, SimHistory,
                  memoized_dram_model, run_sweep)
from .workloads import (ConstantLoad, LoadTrace, make_be_workload,
                        make_lc_workload)

__version__ = "1.1.0"

__all__ = [
    "HeraclesConfig", "HeraclesController",
    "LcDramBandwidthModel", "profile_lc_dram_model",
    "MachineSpec", "Server", "default_machine_spec",
    "ScenarioSpec", "compile_scenario", "load_scenario", "run_scenario",
    "BatchColocationSim", "ColocationSim", "SimHistory",
    "memoized_dram_model", "run_sweep",
    "ConstantLoad", "LoadTrace", "make_be_workload", "make_lc_workload",
    "build_colocation",
    "__version__",
]


def build_colocation(lc_name: str, be_name: str,
                     load: float = 0.5,
                     trace: Optional[LoadTrace] = None,
                     spec: Optional[MachineSpec] = None,
                     seed: int = 0) -> ColocationSim:
    """Convenience constructor: one LC service + one BE task on a server.

    Args:
        lc_name: one of ``websearch``, ``ml_cluster``, ``memkeyval``.
        be_name: one of ``brain``, ``streetview``, ``stream-LLC``,
            ``stream-DRAM``, ``cpu_pwr``, ``iperf``.
        load: constant LC load fraction (ignored if ``trace`` given).
        trace: optional explicit load trace.
        spec: optional machine description (defaults to the paper's
            dual-socket server).
        seed: RNG seed for tail-latency noise.
    """
    spec = spec or default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    be = make_be_workload(be_name, spec)
    trace = trace or ConstantLoad(load)
    return ColocationSim(lc=lc, trace=trace, be=be, spec=spec, seed=seed)
