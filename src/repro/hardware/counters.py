"""Performance-counter facade: the only window the controller gets.

Heracles is deliberately built on *observable* quantities: application
tail latency and load (reported by the LC service itself), DRAM bandwidth
registers, RAPL power, per-core frequency, and per-class network transmit
counters.  :class:`CounterBank` exposes exactly that surface over a
:class:`~repro.hardware.server.Server`, so the controller code cannot
accidentally peek at simulation internals the real system could not see.
"""

from __future__ import annotations

from typing import Dict, Optional

from .server import Server


class CounterBank:
    """Read-only hardware telemetry for one server."""

    def __init__(self, server: Server):
        self._server = server

    # -- DRAM ----------------------------------------------------------

    def dram_total_bw_gbps(self) -> float:
        """Total DRAM traffic across all sockets (controller registers)."""
        return self._server.telemetry.total_dram_gbps

    def dram_capacity_gbps(self) -> float:
        return self._server.spec.total_dram_bw_gbps

    def socket_dram_capacity_gbps(self) -> float:
        """Peak streaming bandwidth of one socket's channels."""
        return self._server.spec.socket.dram_bw_gbps

    def dram_utilization(self) -> float:
        """Worst-socket channel utilization in [0, 1]."""
        return self._server.telemetry.max_dram_utilization

    def worst_socket_dram_bw_gbps(self) -> float:
        """Traffic on the busiest socket's controllers.

        DRAM saturation is a per-controller phenomenon: a BE job packed
        onto one socket can saturate that socket's channels while the
        machine-wide total looks healthy."""
        return max((s.dram_achieved_gbps
                    for s in self._server.telemetry.sockets), default=0.0)

    def dram_bw_of(self, task: str) -> float:
        """Per-task bandwidth estimate.

        The real chips lack per-core DRAM accounting; Heracles
        approximates it from NUMA-local counters (§4.3).  We model the
        same estimate with multiplicative noise injected by the engine;
        here we return the resolved value.
        """
        try:
            return self._server.usage_of(task).dram_achieved_gbps
        except KeyError:
            return 0.0

    # -- Power / frequency ----------------------------------------------

    def socket_power_watts(self, socket: int) -> float:
        return self._server.rapl[socket].read_watts()

    def power_fraction_of_tdp(self, socket: int) -> float:
        return self._server.rapl[socket].read_fraction_of_tdp()

    def max_power_fraction_of_tdp(self) -> float:
        return max(self.power_fraction_of_tdp(s)
                   for s in range(self._server.spec.sockets))

    def freq_of(self, task: str) -> Optional[float]:
        """Average achieved frequency of a task's cores, GHz."""
        try:
            return self._server.usage_of(task).freq_ghz
        except KeyError:
            return None

    # -- Network ---------------------------------------------------------

    def link_rate_gbps(self) -> float:
        return self._server.spec.nic.link_gbps

    def tx_gbps_of(self, task: str) -> float:
        try:
            return self._server.usage_of(task).net_achieved_gbps
        except KeyError:
            return 0.0

    def link_tx_gbps(self) -> float:
        return self._server.telemetry.link_tx_gbps

    # -- CPU -------------------------------------------------------------

    def cpu_utilization(self) -> float:
        return self._server.telemetry.cpu_utilization

    def per_task_dram_gbps(self) -> Dict[str, float]:
        return {name: usage.dram_achieved_gbps
                for name, usage in self._server.usages().items()}
