"""Tests for the parallel sweep runner and profiling memoization."""

import os

import pytest

from repro.experiments.common import colocation_sweep, run_colocation
from repro.hardware.spec import default_machine_spec
from repro.sim import runner
from repro.sim.runner import (clear_model_cache, default_jobs,
                              memoized_dram_model, run_sweep)


def _square(x):
    return x * x


def _add(a, b=0):
    return a + b


class TestRunSweep:
    def test_serial_results_in_order(self):
        assert run_sweep(_square, [1, 2, 3, 4], processes=1) == [1, 4, 9, 16]

    def test_star_points(self):
        points = [((1,), {"b": 10}), ((2,), {}), ((), {"a": 3, "b": 4})]
        assert run_sweep(_add, points, processes=1, star=True) == [11, 2, 7]

    def test_empty_points(self):
        assert run_sweep(_square, [], processes=8) == []

    def test_parallel_matches_serial(self):
        points = list(range(8))
        serial = run_sweep(_square, points, processes=1)
        parallel = run_sweep(_square, points, processes=2)
        assert parallel == serial

    def test_worker_count_never_exceeds_points(self, monkeypatch):
        monkeypatch.setenv(runner.JOBS_ENV, "64")
        assert default_jobs(3) == 64  # env pin wins...
        monkeypatch.delenv(runner.JOBS_ENV)
        assert default_jobs(3) <= max(3, os.cpu_count() or 1)

    def test_jobs_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(runner.JOBS_ENV, "not-a-number")
        assert default_jobs(4) >= 1

    def test_jobs_env_zero_means_auto(self, monkeypatch):
        """REPRO_JOBS=0 is the documented 'auto', not forced-serial."""
        monkeypatch.delenv(runner.JOBS_ENV, raising=False)
        auto = default_jobs(3)
        monkeypatch.setenv(runner.JOBS_ENV, "0")
        assert default_jobs(3) == auto

    def test_jobs_env_negative_rejected(self, monkeypatch):
        monkeypatch.setenv(runner.JOBS_ENV, "-2")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs(3)


class TestMemoizedModel:
    def test_same_object_returned(self):
        clear_model_cache()
        spec = default_machine_spec()
        a = memoized_dram_model("websearch", spec)
        b = memoized_dram_model("websearch", spec)
        assert a is b

    def test_distinct_per_workload(self):
        clear_model_cache()
        a = memoized_dram_model("websearch")
        b = memoized_dram_model("ml_cluster")
        assert a is not b
        clear_model_cache()
        assert memoized_dram_model("websearch") is not a

    def test_matches_fresh_profile(self):
        import numpy as np

        from repro.core.dram_model import profile_lc_dram_model
        from repro.workloads.latency_critical import make_lc_workload
        clear_model_cache()
        cached = memoized_dram_model("websearch")
        fresh = profile_lc_dram_model(make_lc_workload("websearch"))
        np.testing.assert_allclose(cached.bandwidth_gbps,
                                   fresh.bandwidth_gbps)


class TestColocationSweep:
    def test_grid_shape_and_order(self):
        grid = colocation_sweep("websearch", ["brain"], [0.3, 0.6],
                                duration_s=60.0, warmup_s=20.0,
                                processes=1, seed=2)
        assert set(grid) == {"brain"}
        assert [r.load for r in grid["brain"]] == [0.3, 0.6]
        assert all(r.lc_name == "websearch" for r in grid["brain"])

    def test_matches_direct_run(self):
        """A sweep cell equals the same point run directly with the
        memoized model (the runner must not perturb results)."""
        clear_model_cache()
        spec = default_machine_spec()
        model = memoized_dram_model("websearch", spec)
        direct = run_colocation("websearch", "brain", 0.5, duration_s=60.0,
                                warmup_s=20.0, spec=spec, dram_model=model,
                                seed=7)
        grid = colocation_sweep("websearch", ["brain"], [0.5],
                                duration_s=60.0, warmup_s=20.0, spec=spec,
                                processes=1, seed=7)
        swept = grid["brain"][0]
        assert swept.max_slo_fraction == pytest.approx(
            direct.max_slo_fraction, rel=1e-12)
        assert swept.mean_emu == pytest.approx(direct.mean_emu, rel=1e-12)
