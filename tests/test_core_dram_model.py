"""Tests for the offline DRAM bandwidth model."""

import numpy as np
import pytest

from repro.core.dram_model import LcDramBandwidthModel, profile_lc_dram_model
from repro.workloads.latency_critical import make_lc_workload


@pytest.fixture(scope="module")
def model():
    return profile_lc_dram_model(make_lc_workload("websearch"))


@pytest.fixture(scope="module")
def ml_model():
    return profile_lc_dram_model(make_lc_workload("ml_cluster"))


class TestProfiling:
    def test_bandwidth_grows_with_load(self, model):
        ways = 20
        values = [model.predict_gbps(l, ways) for l in (0.1, 0.4, 0.7, 1.0)]
        assert values == sorted(values)

    def test_bandwidth_grows_as_cache_shrinks(self, model):
        # Fewer LLC ways -> more misses -> more DRAM traffic.
        generous = model.predict_gbps(0.8, 20)
        starved = model.predict_gbps(0.8, 2)
        assert starved >= generous

    def test_matches_paper_peak_fraction(self, model):
        # websearch: 40% of 120 GB/s at 100% load with full cache.
        assert model.predict_gbps(1.0, 20) == pytest.approx(48.0, rel=0.15)

    def test_ml_cluster_superlinear(self, ml_model):
        half = ml_model.predict_gbps(0.5, 20)
        full = ml_model.predict_gbps(1.0, 20)
        assert full > 2.2 * half

    def test_clamps_outside_grid(self, model):
        assert model.predict_gbps(-0.5, 20) == model.predict_gbps(
            model.loads[0], 20)
        assert model.predict_gbps(2.0, 20) == model.predict_gbps(
            model.loads[-1], 20)
        assert model.predict_gbps(0.5, 999) == model.predict_gbps(
            0.5, int(model.ways[-1]))

    def test_interpolation_is_sane(self, model):
        lo = model.predict_gbps(0.50, 20)
        hi = model.predict_gbps(0.55, 20)
        mid = model.predict_gbps(0.525, 20)
        assert min(lo, hi) - 1e-9 <= mid <= max(lo, hi) + 1e-9


class TestStaleness:
    def test_perturbed_scales(self, model):
        stale = model.perturbed(1.2)
        assert stale.predict_gbps(0.5, 20) == pytest.approx(
            1.2 * model.predict_gbps(0.5, 20))

    def test_perturbed_composes(self, model):
        assert model.perturbed(1.2).perturbed(0.5).scale == pytest.approx(
            0.6)

    def test_bad_scale(self, model):
        with pytest.raises(ValueError):
            model.perturbed(0.0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            LcDramBandwidthModel(loads=np.array([0.1, 0.2]),
                                 ways=np.array([2.0, 4.0]),
                                 bandwidth_gbps=np.zeros((3, 2)))

    def test_unsorted_grid(self):
        with pytest.raises(ValueError):
            LcDramBandwidthModel(loads=np.array([0.2, 0.1]),
                                 ways=np.array([2.0, 4.0]),
                                 bandwidth_gbps=np.zeros((2, 2)))
