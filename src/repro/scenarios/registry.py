"""Named scenario registry.

Scenarios that ship with the package (the paper's figures, the example
stress tests) register themselves here so the CLI can run them by name
(``python -m repro.cli scenario fig4``) and users can list what exists
(``--list``).  Registration stores a zero-argument *factory* rather
than a spec instance, so registered scenarios are built — and therefore
re-validated — on every lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .spec import ScenarioError, ScenarioSpec

_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register(name: str, factory: Callable[[], ScenarioSpec],
             description: str = "") -> None:
    """Register a named scenario.

    Args:
        name: lookup key (also the conventional ``spec.name``).
        factory: zero-argument callable returning the spec.
        description: one-liner for ``--list``; defaults to the spec's
            own description at first lookup.
    """
    if name in _REGISTRY:
        raise ScenarioError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = factory
    _DESCRIPTIONS[name] = description


def registered(name: str, description: str = ""
               ) -> Callable[[Callable[[], ScenarioSpec]],
                             Callable[[], ScenarioSpec]]:
    """Decorator form of :func:`register` for spec factories."""
    def wrap(factory: Callable[[], ScenarioSpec]
             ) -> Callable[[], ScenarioSpec]:
        register(name, factory, description)
        return factory
    return wrap


def get(name: str) -> ScenarioSpec:
    """Build the registered scenario ``name`` (re-validating it)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(names()) or '(none)'}") from None
    spec = factory()
    spec.validate()
    return spec


def names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def description(name: str) -> str:
    """The one-line description shown by ``--list``.

    Falls back to the built spec's own ``description`` when none was
    given at registration time.
    """
    if name not in _REGISTRY:
        raise ScenarioError(f"unknown scenario {name!r}")
    stored = _DESCRIPTIONS.get(name)
    if stored:
        return stored
    return _REGISTRY[name]().description
