"""CFS time-sharing model for the OS-isolation baseline.

The paper's characterization (§3.2, the ``brain`` rows of Figure 1) runs
the LC workload and a BE task in separate containers with nothing but
CFS ``shares`` separating them: "the OS allows both workloads to run on
the same core and even the same HyperThread, further compounding the
interference".  Leverich & Kozyrakis [39] showed that CFS has structural
vulnerabilities that produce scheduling delays of tens of milliseconds
for latency-critical tasks colocated this way.

We model the tail *scheduling delay* an LC task experiences when it
shares cores with a BE task under CFS:

* CFS grants the BE task timeslices on any core; when a request arrives
  for the LC task on a core currently running BE, the request waits out
  the remainder of the slice (bounded by the minimum granularity) plus
  wakeup/migration costs.
* The probability a request finds its core occupied grows with the BE
  task's CPU demand and with total machine pressure; at even moderate BE
  demand the 99th percentile absorbs several such stalls.

The output is an *additive tail delay in milliseconds* — devastating for
microsecond-scale SLOs (memkeyval) and merely terrible for millisecond
ones (websearch), exactly the gradient Figure 1 shows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CfsModelParams:
    """Tunables of the CFS tail-delay model.

    Attributes:
        sched_latency_ms: CFS targeted preemption latency (default 24 ms
            on the multi-core servers of the era at this core count).
        occupancy_floor: minimum probability an arriving request finds a
            BE thread occupying its core, however small the BE shares.
            CFS preempts at granularity boundaries, not instantly, and a
            saturating BE job keeps every run queue populated — low
            shares shrink the BE's *throughput*, not its *presence*.
        lc_pressure_gain: how quickly stalls compound as the LC task's
            own demand rises (more runnable LC threads means more
            wakeup conflicts and queue-imbalance pathologies [39]).
    """

    sched_latency_ms: float = 24.0
    occupancy_floor: float = 0.85
    lc_pressure_gain: float = 3.0


class CfsSharedCoreModel:
    """Tail scheduling delay for an LC task sharing cores under CFS."""

    def __init__(self, params: CfsModelParams = CfsModelParams()):
        self.params = params

    def tail_delay_ms(self, lc_cpu_demand: float, be_cpu_demand: float,
                      cores: int, lc_share: float) -> float:
        """99th-percentile extra delay from CFS time sharing.

        The 99%-ile request absorbs roughly a full scheduling-latency
        round whenever a BE thread occupies its core (the Leverich &
        Kozyrakis pathology), compounded as the LC task's own pressure
        grows and wakeup/migration conflicts stack.

        Args:
            lc_cpu_demand: LC CPU demand in cores (e.g. 7.2 of 36).
            be_cpu_demand: BE CPU demand in cores; BE batch jobs are
                work-conserving and will consume any share offered.
            cores: physical cores both groups may run on.
            lc_share: LC's fraction of CFS shares (near 1.0 when the BE
                task is given very few shares, as in the paper).

        Returns:
            Additive 99%-ile scheduling delay, milliseconds.
        """
        if cores <= 0:
            return 0.0
        if be_cpu_demand <= 0:
            return 0.0
        p = self.params
        be_pressure = min(1.0, be_cpu_demand / cores)
        occupancy = be_pressure * max(p.occupancy_floor, 1.0 - lc_share)
        lc_rho = min(1.0, lc_cpu_demand / cores)
        stacking = 1.0 + p.lc_pressure_gain * lc_rho ** 2
        return occupancy * p.sched_latency_ms * stacking

    def throughput_share(self, lc_cpu_demand: float, be_cpu_demand: float,
                         cores: int, lc_share: float) -> float:
        """Fraction of its demand the BE task actually gets under CFS.

        CFS is work-conserving: BE soaks up idle cycles regardless of its
        tiny share, throttled only when the LC task is runnable.
        """
        if cores <= 0 or be_cpu_demand <= 0:
            return 0.0
        idle = max(0.0, cores - lc_cpu_demand)
        granted = min(be_cpu_demand, idle + lc_share * 0.0
                      + (1.0 - lc_share) * lc_cpu_demand)
        return granted / be_cpu_demand
