"""Command-line entry point: ``python -m repro.cli <command>``.

Runs any of the paper's experiments, a quickstart demo, the whole
suite, or a declarative scenario (``scenario <name-or-file>``; see
``docs/scenarios.md``), printing the same tables/series the paper's
figures report.  Fleet-scale shapes get dedicated commands: ``fleet``
runs a sharded multi-cluster fleet, ``sched`` runs a fleet with a
best-effort job queue scheduled over its Heracles slack signals
(including the policy-vs-static goodput/TCO comparison).
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Callable, Dict, List, Optional

from .experiments import (fig1_interference, fig3_convexity,
                          fig4_latency_slo, fig5_emu, fig6_shared_resources,
                          fig7_network_bw, fig8_cluster, tco_table)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig1": fig1_interference.main,
    "fig3": fig3_convexity.main,
    "fig4": fig4_latency_slo.main,
    "fig5": fig5_emu.main,
    "fig6": fig6_shared_resources.main,
    "fig7": fig7_network_bw.main,
    "fig8": fig8_cluster.main,
    "tco": tco_table.main,
}

#: Commands whose work fans out across the sweep runner; ``--jobs``
#: only affects these (plus ``all``, which includes them).
SWEEP_COMMANDS = frozenset({"fig4", "fig5", "fig6", "fig8", "all",
                            "scenario", "fleet", "sched"})

#: Placement policies the ``sched`` command may select (mirrors
#: :data:`repro.sched.policies.POLICIES` without importing the engine
#: at parser-build time).
SCHED_POLICIES = ("slack-greedy", "round-robin", "static")


def quickstart(seed: int = 42) -> None:
    """The README demo: websearch + brain at 50% load.

    Args:
        seed: tail-noise RNG seed for the run.
    """
    from . import HeraclesController, build_colocation
    sim = build_colocation("websearch", "brain", load=0.50, seed=seed)
    HeraclesController.for_sim(sim)
    history = sim.run(900)
    print(f"worst 60s tail: {history.worst_window_slo(skip_s=240):.0%} "
          f"of SLO; mean EMU: {history.mean_emu(skip_s=240):.0%}")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI parser (one subcommand per artefact)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'Heracles: Improving "
                    "Resource Efficiency at Scale' (ISCA 2015).")
    sub = parser.add_subparsers(
        dest="experiment", metavar="command", required=True,
        help="which artefact to regenerate (fig8 takes minutes; "
             "'all' runs everything; 'scenario' runs a declarative "
             "spec)")

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "-j", "--jobs", type=int, default=None, metavar="N",
            help="worker processes for sweep fan-out (default: one per "
                 "CPU; 1 forces the serial path)")

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record the run's decision trace (controller "
                 "actuations with their triggering signals, chaos "
                 "resolutions, scheduler placements/evictions, "
                 "checkpoint saves) and write it to PATH as "
                 "deterministic tick-ordered JSONL; never perturbs "
                 "the simulated numbers")
        p.add_argument(
            "--profile", action="store_true",
            help="measure tick-phase wall-clock (chaos/physics/"
                 "telemetry/controllers/rollup/ipc) and print the "
                 "fleet-wide breakdown table to stderr")
        p.add_argument(
            "--json", action="store_true", dest="json_output",
            help="print the run summary as one JSON document on "
                 "stdout instead of the human-readable report "
                 "(errors still go to stderr)")
        p.add_argument(
            "--progress", action="store_true",
            help="print throttled tick/ETA heartbeats on stderr while "
                 "long runs advance (works across the worker pool)")

    def add_checkpoint(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint", metavar="PATH", default=None,
            help="snapshot the full engine state mid-run to PATH (a "
                 "directory for fleet/sched scenarios, an .npz archive "
                 "for member scenarios); requires --checkpoint-at")
        p.add_argument(
            "--checkpoint-at", type=float, default=None, metavar="T",
            help="simulated time of the --checkpoint snapshot, in "
                 "seconds (must land inside the run)")
        p.add_argument(
            "--resume", metavar="PATH", default=None,
            help="warm-start from a checkpoint written by a previous "
                 "run of this scenario; bit-identical to running from "
                 "t=0")
        p.add_argument(
            "--spill-dir", metavar="DIR", default=None,
            help="stream full telemetry chunks to .npy files under DIR "
                 "so history memory is bounded by chunk size, not run "
                 "length")

    for name in sorted(EXPERIMENTS) + ["all"]:
        p = sub.add_parser(name)
        add_jobs(p)
        if name == "fig8":
            p.add_argument(
                "--leaves", type=int, default=None, metavar="N",
                help="leaf servers behind the fan-out root (default: "
                     "the registered scenario's 8; at least 2)")
            p.add_argument(
                "--engine", choices=("batch", "scalar"), default=None,
                help="leaf execution backend (default: batch)")

    quick = sub.add_parser(
        "quickstart", help="the README demo (websearch + brain)")
    add_jobs(quick)
    quick.add_argument("--seed", type=int, default=42,
                       help="tail-noise RNG seed (default: 42)")

    scenario = sub.add_parser(
        "scenario",
        help="run a registered scenario or a .yaml/.json spec file",
        description="Compile and run a declarative scenario "
                    "(docs/scenarios.md documents the spec schema).")
    scenario.add_argument(
        "scenario", nargs="?", default=None, metavar="name-or-file",
        help="a registered scenario name or a path to a spec file")
    scenario.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered scenarios and exit")
    add_jobs(scenario)
    scenario.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed")
    add_obs(scenario)
    add_checkpoint(scenario)

    fleet = sub.add_parser(
        "fleet",
        help="run a sharded fleet scenario (registered name or spec file)",
        description="Compile and run a fleet-shaped scenario on the "
                    "sharded backend (docs/scenarios.md documents the "
                    "FleetSpec schema).")
    fleet.add_argument(
        "scenario", nargs="?", default=None, metavar="name-or-file",
        help="a registered fleet scenario name or a path to a spec file")
    fleet.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered fleet scenarios and exit")
    add_jobs(fleet)
    fleet.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed")
    fleet.add_argument(
        "--shard-leaves", type=int, default=None, metavar="N",
        help="override the fleet's maximum leaves per shard (>= 1)")
    fleet.add_argument(
        "--engine", choices=("sharded", "mega"), default=None,
        help="override the fleet engine (sharded pool fan-out vs the "
             "in-process mega array engine; identical telemetry)")
    add_obs(fleet)
    add_checkpoint(fleet)

    sched = sub.add_parser(
        "sched",
        help="run a scheduled fleet scenario (BE job queue over slack)",
        description="Compile and run a schedule-shaped scenario: the "
                    "fleet is simulated once, the best-effort job queue "
                    "is placed over its Heracles slack signals, and the "
                    "goodput/TCO roll-up is compared against the "
                    "static-provisioning baseline (docs/scenarios.md "
                    "documents the ScheduleSpec schema).")
    sched.add_argument(
        "scenario", nargs="?", default=None, metavar="name-or-file",
        help="a registered schedule scenario name or a spec file path")
    sched.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list registered schedule scenarios and exit")
    add_jobs(sched)
    sched.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's base seed")
    sched.add_argument(
        "--shard-leaves", type=int, default=None, metavar="N",
        help="override the fleet's maximum leaves per shard (>= 1)")
    sched.add_argument(
        "--engine", choices=("sharded", "mega"), default=None,
        help="override the fleet engine (sharded pool fan-out vs the "
             "in-process mega array engine; identical telemetry)")
    sched.add_argument(
        "--policy", choices=SCHED_POLICIES, default=None,
        help="override the scenario's placement policy")
    sched.add_argument(
        "--no-compare", action="store_true",
        help="skip the policy-vs-static comparison replay")
    add_obs(sched)
    add_checkpoint(sched)
    return parser


def _apply_jobs(args: argparse.Namespace) -> None:
    """Pin the sweep runner's worker count from ``--jobs``.

    Non-sweep commands run a fixed serial pipeline, where ``--jobs``
    cannot change anything — say so instead of silently ignoring it.
    """
    if args.jobs is None:
        return
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.experiment not in SWEEP_COMMANDS:
        warnings.warn(
            f"--jobs has no effect for {args.experiment!r}: it runs "
            f"serially (sweep fan-out applies to "
            f"{', '.join(sorted(SWEEP_COMMANDS - {'all', 'scenario'}))}, "
            f"'all' and 'scenario')",
            stacklevel=2)
        return
    import os

    from .sim.runner import JOBS_ENV
    os.environ[JOBS_ENV] = str(args.jobs)


def _apply_obs_args(args: argparse.Namespace) -> None:
    """Set the observability env toggles from the CLI flags.

    Runs before any engine or pool worker is built, so one switch
    covers the whole run — workers inherit the environment.
    """
    import os

    from .obs import PROFILE_ENV, PROGRESS_ENV, TRACE_ENV
    if getattr(args, "trace", None):
        os.environ[TRACE_ENV] = "1"
    if getattr(args, "profile", False):
        os.environ[PROFILE_ENV] = "1"
    if getattr(args, "progress", False):
        os.environ[PROGRESS_ENV] = "1"


def _emit_scenario_result(args: argparse.Namespace, result,
                          extra: Optional[Dict[str, object]] = None) -> None:
    """Print/write a scenario run's outputs per the obs flags.

    The summary goes to stdout — as the human report, or as one JSON
    document under ``--json`` (with ``extra`` keys merged in).  The
    trace JSONL goes to ``--trace``'s path and the profile table to
    stderr, so machine consumers can parse stdout unconditionally.
    """
    import json

    if getattr(args, "trace", None):
        from .obs import empty_payload, write_jsonl
        payload = result.trace if result.trace is not None \
            else empty_payload()
        write_jsonl(payload, args.trace)
        print(f"trace: {len(payload['t_s'])} event(s) -> {args.trace}",
              file=sys.stderr)
    if getattr(args, "profile", False) and result.profile is not None:
        from .obs import render_profile
        print(render_profile(result.profile), end="", file=sys.stderr)
    if getattr(args, "json_output", False):
        doc = result.to_dict()
        if extra:
            doc.update(extra)
        print(json.dumps(doc, sort_keys=True))
    else:
        print(result.render(), end="")


def _resolve_scenario_spec(name_or_file: str):
    """Resolve a CLI scenario argument to a validated spec.

    Registry names win over the filesystem, so a stray directory named
    ``fig8`` in cwd cannot shadow the registered scenario; spell file
    paths with an extension or a separator.
    """
    import os

    from .scenarios import load_scenario, registry
    if name_or_file in registry.names():
        return registry.get(name_or_file)
    if os.path.exists(name_or_file) or name_or_file.endswith(
            (".json", ".yaml", ".yml")):
        return load_scenario(name_or_file)
    return registry.get(name_or_file)  # raises with the names


def _apply_checkpoint_args(args: argparse.Namespace, spec):
    """Fold ``--checkpoint/--checkpoint-at/--resume/--spill-dir`` into
    the spec's ``checkpoint`` stanza (CLI flags win field-by-field)."""
    import dataclasses

    from .scenarios import CheckpointSpec
    overrides = {name: value for name, value in (
        ("save", args.checkpoint), ("at_s", args.checkpoint_at),
        ("resume", args.resume), ("spill_dir", args.spill_dir))
        if value is not None}
    if not overrides:
        return spec
    if spec.checkpoint is not None:
        ckpt = dataclasses.replace(spec.checkpoint, **overrides)
    else:
        ckpt = CheckpointSpec(**overrides)
    ckpt.validate("checkpoint")
    return dataclasses.replace(spec, checkpoint=ckpt)


def _run_scenario_command(args: argparse.Namespace) -> int:
    """Handle ``repro scenario [name-or-file] [--list] [--seed N]``."""
    import dataclasses

    from .scenarios import ScenarioError, compile_scenario, registry
    if args.list_scenarios:
        for name in registry.names():
            print(f"{name:<16} {registry.description(name)}")
        return 0
    if args.scenario is None:
        raise SystemExit("scenario: give a registered name or a spec file "
                         "path (or --list)")
    try:
        spec = _resolve_scenario_spec(args.scenario)
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
        spec = _apply_checkpoint_args(args, spec)
        result = compile_scenario(spec).run()
    except ScenarioError as exc:
        raise SystemExit(f"scenario: {exc}") from exc
    _emit_scenario_result(args, result)
    return 0


def _check_shard_leaves(args: argparse.Namespace, command: str) -> None:
    """Reject non-positive ``--shard-leaves`` before any work starts."""
    if args.shard_leaves is not None and args.shard_leaves < 1:
        raise SystemExit(
            f"{command}: --shard-leaves must be a positive leaf count, "
            f"got {args.shard_leaves}")


def _run_fleet_command(args: argparse.Namespace) -> int:
    """Handle ``repro fleet [name-or-file] [--list] [--shard-leaves N]``."""
    import dataclasses

    from .scenarios import ScenarioError, compile_scenario, registry
    if args.list_scenarios:
        for name in registry.names():
            if registry.get(name).fleet is not None:
                print(f"{name:<16} {registry.description(name)}")
        return 0
    if args.scenario is None:
        raise SystemExit("fleet: give a registered fleet scenario name or "
                         "a spec file path (or --list)")
    _check_shard_leaves(args, "fleet")
    try:
        spec = _resolve_scenario_spec(args.scenario)
        if spec.fleet is None:
            hint = "run it with the 'sched' command instead" \
                if spec.schedule is not None \
                else "run it with the 'scenario' command instead"
            raise SystemExit(
                f"fleet: scenario {spec.name!r} is not fleet-shaped; "
                f"{hint}")
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
        if args.shard_leaves is not None:
            spec = dataclasses.replace(
                spec, fleet=dataclasses.replace(
                    spec.fleet, shard_leaves=args.shard_leaves))
        if args.engine is not None:
            spec = dataclasses.replace(
                spec, fleet=dataclasses.replace(spec.fleet,
                                                engine=args.engine))
        spec = _apply_checkpoint_args(args, spec)
        result = compile_scenario(spec).run()
    except ScenarioError as exc:
        raise SystemExit(f"fleet: {exc}") from exc
    _emit_scenario_result(args, result)
    return 0


def _run_sched_command(args: argparse.Namespace) -> int:
    """Handle ``repro sched [name-or-file] [--policy P] [...]``."""
    import dataclasses

    from .scenarios import ScenarioError, compile_scenario, registry
    if args.list_scenarios:
        for name in registry.names():
            if registry.get(name).schedule is not None:
                print(f"{name:<16} {registry.description(name)}")
        return 0
    if args.scenario is None:
        raise SystemExit("sched: give a registered schedule scenario name "
                         "or a spec file path (or --list)")
    _check_shard_leaves(args, "sched")
    try:
        spec = _resolve_scenario_spec(args.scenario)
        if spec.schedule is None:
            hint = "run it with the 'fleet' command instead" \
                if spec.fleet is not None \
                else "run it with the 'scenario' command instead"
            raise SystemExit(
                f"sched: scenario {spec.name!r} is not schedule-shaped; "
                f"{hint}")
        if args.seed is not None:
            spec = dataclasses.replace(spec, seed=args.seed)
        overrides = {}
        fleet_overrides = {}
        if args.shard_leaves is not None:
            fleet_overrides["shard_leaves"] = args.shard_leaves
        if args.engine is not None:
            fleet_overrides["engine"] = args.engine
        if fleet_overrides:
            overrides["fleet"] = dataclasses.replace(
                spec.schedule.fleet, **fleet_overrides)
        if args.policy is not None:
            overrides["policy"] = args.policy
        if overrides:
            spec = dataclasses.replace(
                spec, schedule=dataclasses.replace(spec.schedule,
                                                   **overrides))
        spec = _apply_checkpoint_args(args, spec)
        result = compile_scenario(spec).run()
    except ScenarioError as exc:
        raise SystemExit(f"sched: {exc}") from exc
    outcomes = None
    if not args.no_compare and spec.schedule.jobs \
            and result.schedule.policy != "static":
        from .sched import compare_policies
        # The scenario's own policy already ran inside the compiled
        # scenario; only the static baseline needs a replay.
        outcomes = {result.schedule.policy: result.schedule}
        outcomes.update(compare_policies(
            result.fleet.slack, spec.schedule.expand_jobs(),
            policies=("static",),
            queue_limit=spec.schedule.queue_limit))
    extra = None
    if outcomes is not None:
        extra = {"policies": {name: outcome.summary()
                              for name, outcome in outcomes.items()}}
    _emit_scenario_result(args, result, extra=extra)
    if outcomes is not None and not getattr(args, "json_output", False):
        from .sched import render_comparison
        print(render_comparison(outcomes, fleet=result.fleet,
                                skip_s=spec.warmup_s), end="")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the selected command."""
    args = build_parser().parse_args(argv)
    _apply_jobs(args)
    _apply_obs_args(args)
    if args.experiment == "scenario":
        return _run_scenario_command(args)
    if args.experiment == "fleet":
        return _run_fleet_command(args)
    if args.experiment == "sched":
        return _run_sched_command(args)
    if args.experiment == "quickstart":
        quickstart(seed=args.seed)
        return 0
    if args.experiment == "all":
        for name in sorted(EXPERIMENTS):
            print(f"==== {name} " + "=" * 50)
            EXPERIMENTS[name]()
        return 0
    if args.experiment == "fig8":
        from .scenarios import ScenarioError
        try:
            fig8_cluster.main(leaves=args.leaves, engine=args.engine)
        except ScenarioError as exc:
            raise SystemExit(f"fig8: {exc}") from exc
        return 0
    EXPERIMENTS[args.experiment]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
