"""Offline DRAM-bandwidth model of the LC workload.

The Intel chips of the paper cannot measure (or limit) DRAM bandwidth
per core, so Heracles needs "an offline model that describes the DRAM
bandwidth used by the latency-sensitive workloads at various loads,
core, and LLC allocations" (§4.2).  The model is regenerated only on
significant workload changes; small deviations are fine — §5.2 notes the
websearch binary and shard changed between profiling and evaluation and
Heracles still performed well.  We reproduce that robustness with an
optional staleness perturbation.

Profiling works exactly like the real thing: run the LC workload alone
at a grid of (load, LLC ways) points, record its DRAM traffic, and
interpolate bilinearly at prediction time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..hardware.cache import resolve_occupancy
from ..workloads.latency_critical import LatencyCriticalWorkload


@dataclass
class LcDramBandwidthModel:
    """Interpolating (load, llc_ways) -> DRAM bandwidth (GB/s) table."""

    loads: np.ndarray          # ascending load grid, shape (L,)
    ways: np.ndarray           # ascending LLC-way grid, shape (W,)
    bandwidth_gbps: np.ndarray  # shape (L, W)
    scale: float = 1.0         # staleness perturbation multiplier

    def __post_init__(self):
        if self.bandwidth_gbps.shape != (len(self.loads), len(self.ways)):
            raise ValueError("table shape mismatch")
        if np.any(np.diff(self.loads) <= 0) or np.any(np.diff(self.ways) <= 0):
            raise ValueError("grids must be strictly ascending")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        # Plain-float views of the grids: predict_gbps sits on the
        # controller's 2-second hot path (every leaf of a cluster polls
        # it), and scalar bisect + float arithmetic is ~20x cheaper than
        # numpy scalar dispatch while computing bit-identical values.
        self._load_grid = [float(x) for x in self.loads]
        self._way_grid = [float(x) for x in self.ways]
        self._table = [[float(v) for v in row] for row in self.bandwidth_gbps]

    def predict_gbps(self, load: float, llc_ways: int) -> float:
        """Bilinear interpolation, clamped to the profiled grid."""
        loads, ways = self._load_grid, self._way_grid
        load = min(loads[-1], max(loads[0], float(load)))
        w = min(ways[-1], max(ways[0], float(llc_ways)))
        li = max(0, min(bisect_left(loads, load) - 1, len(loads) - 2))
        wi = max(0, min(bisect_left(ways, w) - 1, len(ways) - 2))
        lf = (load - loads[li]) / (loads[li + 1] - loads[li])
        wf = (w - ways[wi]) / (ways[wi + 1] - ways[wi])
        t0, t1 = self._table[li], self._table[li + 1]
        value = ((1 - lf) * (1 - wf) * t0[wi]
                 + lf * (1 - wf) * t1[wi]
                 + (1 - lf) * wf * t0[wi + 1]
                 + lf * wf * t1[wi + 1])
        return value * self.scale

    def perturbed(self, scale: float) -> "LcDramBandwidthModel":
        """A stale copy of the model (binary/shard changed since
        profiling); used by the robustness ablation."""
        return LcDramBandwidthModel(loads=self.loads, ways=self.ways,
                                    bandwidth_gbps=self.bandwidth_gbps,
                                    scale=self.scale * scale)


def profile_lc_dram_model(lc: LatencyCriticalWorkload,
                          loads: Optional[Sequence[float]] = None,
                          way_points: Optional[Sequence[int]] = None
                          ) -> LcDramBandwidthModel:
    """Offline profiling run: LC alone at a grid of loads and LLC sizes.

    For each grid point we resolve the LC workload's steady-state cache
    occupancy inside a partition of the given size and add its uncached
    traffic — the same physics the simulator uses online, which is what
    profiling on the real machine measures too.
    """
    spec = lc.spec
    if loads is None:
        loads = [round(0.05 * i, 2) for i in range(1, 21)]  # 5%..100%
    if way_points is None:
        step = max(1, spec.socket.llc_ways // 10)
        way_points = list(range(2, spec.socket.llc_ways + 1, step))
        if way_points[-1] != spec.socket.llc_ways:
            way_points.append(spec.socket.llc_ways)

    loads = sorted(set(float(x) for x in loads))
    way_points = sorted(set(int(w) for w in way_points))
    table = np.zeros((len(loads), len(way_points)))
    mb_per_way = spec.socket.llc_mb / spec.socket.llc_ways

    for li, load in enumerate(loads):
        uncached = lc._uncached_share * lc.dram_target_gbps(load)
        access = lc._access_gbps(load)
        for wi, ways in enumerate(way_points):
            partition_mb = ways * mb_per_way * spec.sockets
            from ..hardware.cache import CacheDemand
            demand = CacheDemand(
                task=lc.name,
                hot_mb=lc.profile.hot_mb,
                bulk_mb=lc.bulk_mb(load),
                access_gbps=access,
                hot_access_fraction=lc.profile.hot_access_fraction,
                bulk_reuse=lc.profile.bulk_reuse,
            )
            shares = resolve_occupancy(partition_mb, [demand])
            miss = shares[0].miss_gbps if shares else 0.0
            table[li, wi] = uncached + miss

    return LcDramBandwidthModel(
        loads=np.array(loads), ways=np.array(way_points, dtype=float),
        bandwidth_gbps=table)
