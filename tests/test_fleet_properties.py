"""Property-based invariants (hypothesis) for the aggregation stack.

Covers the three aggregation layers the fleet composes: the fan-out
root (:class:`RootAggregator`), the centralized coordinator
(:class:`ClusterCoordinator`), and the fleet roll-up
(:mod:`repro.fleet.aggregate`).  The invariants are the ones the PR-4
issue names: EMU aggregates stay inside [0, 1] when their inputs do,
fleet latency is bounded by the slowest cluster, and every aggregate
is permutation-invariant under leaf (and cluster) reordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.root import RootAggregator
from repro.fleet.aggregate import (fleet_emu_row, rollup_cluster,
                                   weighted_root_latency_row)
from repro.workloads.traces import ConstantLoad

tails = st.lists(st.floats(min_value=0.1, max_value=500.0,
                           allow_nan=False, allow_infinity=False),
                 min_size=1, max_size=24)
emus = st.lists(st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=12)


class TestRootAggregatorProperties:
    @given(tails, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_combine_bounded_by_leaf_extremes(self, leaf_tails, weight):
        root = RootAggregator(straggler_weight=weight)
        combined = root.combine(leaf_tails)
        assert min(leaf_tails) - 1e-9 <= combined <= max(leaf_tails) + 1e-9

    @given(tails, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_combine_permutation_invariant(self, leaf_tails, rng):
        root = RootAggregator()
        before = root.combine(leaf_tails)
        shuffled = list(leaf_tails)
        rng.shuffle(shuffled)
        assert root.combine(shuffled) == pytest.approx(before, rel=1e-9)

    @given(tails)
    @settings(max_examples=40, deadline=None)
    def test_windowed_latency_bounded_by_recorded_samples(self, leaf_tails):
        root = RootAggregator(window_s=30.0)
        recorded = [root.record(float(t), leaf_tails[:i + 1])
                    for i, t in enumerate(range(len(leaf_tails)))]
        windowed = root.windowed_latency_ms()
        assert min(recorded) - 1e-9 <= windowed <= max(recorded) + 1e-9


class TestClusterCoordinatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=60.0,
                              allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_scale_stays_inside_band(self, latencies):
        coordinator = ClusterCoordinator(root_slo_ms=20.0,
                                         base_leaf_slo_ms=10.0,
                                         period_s=1.0)
        for t, latency in enumerate(latencies):
            coordinator.step_targets(float(t), latency)
            assert (coordinator.min_scale - 1e-12 <= coordinator.scale
                    <= coordinator.max_scale + 1e-12)
            assert coordinator.leaf_target_ms == pytest.approx(
                10.0 * coordinator.scale)

    @given(st.floats(min_value=0.0, max_value=60.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_single_step_direction_follows_slack(self, latency):
        coordinator = ClusterCoordinator(root_slo_ms=20.0,
                                         base_leaf_slo_ms=10.0)
        coordinator.step_targets(0.0, latency)
        slack = (20.0 - latency) / 20.0
        if slack > coordinator.raise_slack:
            assert coordinator.scale > 1.0
        elif slack < coordinator.lower_slack:
            assert coordinator.scale < 1.0
        else:
            assert coordinator.scale == 1.0


class TestFleetAggregateProperties:
    @given(st.lists(emus, min_size=1, max_size=8).filter(
        lambda rows: len({len(r) for r in rows}) == 1))
    @settings(max_examples=60, deadline=None)
    def test_fleet_emu_in_unit_interval_and_between_extremes(self, rows):
        grid = np.array(rows)  # (T, C)
        leaves = np.arange(1, grid.shape[1] + 1)
        fleet = fleet_emu_row(grid, leaves)
        assert ((fleet >= 0.0) & (fleet <= 1.0)).all()
        assert (fleet >= grid.min(axis=1) - 1e-12).all()
        assert (fleet <= grid.max(axis=1) + 1e-12).all()

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=5),
           st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_fleet_aggregates_permutation_invariant(self, clusters, ticks,
                                                    rng):
        base = np.random.default_rng(7)
        emu = base.uniform(0.0, 1.0, size=(ticks, clusters))
        latency = base.uniform(1.0, 50.0, size=(ticks, clusters))
        load = base.uniform(0.0, 1.0, size=(ticks, clusters))
        leaves = base.integers(2, 50, size=clusters)
        order = list(range(clusters))
        rng.shuffle(order)
        np.testing.assert_allclose(
            fleet_emu_row(emu[:, order], leaves[order]),
            fleet_emu_row(emu, leaves), rtol=1e-9)
        np.testing.assert_allclose(
            weighted_root_latency_row(latency[:, order], load[:, order],
                                      leaves[order]),
            weighted_root_latency_row(latency, load, leaves), rtol=1e-9)

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_weighted_latency_bounded_by_slowest_cluster(self, clusters,
                                                         ticks):
        base = np.random.default_rng(clusters * 101 + ticks)
        latency = base.uniform(1.0, 50.0, size=(ticks, clusters))
        load = base.uniform(0.0, 1.0, size=(ticks, clusters))
        leaves = base.integers(2, 50, size=clusters)
        weighted = weighted_root_latency_row(latency, load, leaves)
        assert (weighted <= latency.max(axis=1) + 1e-9).all()
        assert (weighted >= latency.min(axis=1) - 1e-9).all()

    def test_weighted_latency_zero_load_falls_back_to_mean(self):
        latency = np.array([[10.0, 30.0]])
        load = np.zeros((1, 2))
        leaves = np.array([4, 4])
        weighted = weighted_root_latency_row(latency, load, leaves)
        assert weighted[0] == pytest.approx(20.0)

    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=5, max_value=40),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_rollup_permutation_invariant_under_leaf_reordering(
            self, leaves, ticks, rng):
        """Reordering a cluster's leaves never moves its aggregates."""
        base = np.random.default_rng(leaves * 1000 + ticks)
        tails = base.uniform(1.0, 40.0, size=(ticks, leaves))
        emus = base.uniform(0.0, 1.0, size=(ticks, leaves))
        times = np.arange(ticks, dtype=float)
        order = list(range(leaves))
        rng.shuffle(order)

        history = rollup_cluster(times, tails, emus,
                                 trace=ConstantLoad(0.5), root_slo_ms=25.0,
                                 record_period_s=5.0)
        shuffled = rollup_cluster(times, tails[:, order], emus[:, order],
                                  trace=ConstantLoad(0.5), root_slo_ms=25.0,
                                  record_period_s=5.0)
        for name in ("root_latency_ms", "root_slo_fraction", "emu"):
            np.testing.assert_allclose(shuffled.column(name),
                                       history.column(name), rtol=1e-9)

    def test_rollup_emu_in_unit_interval_when_leaves_are(self):
        base = np.random.default_rng(5)
        tails = base.uniform(1.0, 40.0, size=(60, 4))
        emus = base.uniform(0.0, 1.0, size=(60, 4))
        history = rollup_cluster(np.arange(60, dtype=float), tails, emus,
                                 trace=ConstantLoad(0.5), root_slo_ms=25.0)
        emu = history.column("emu")
        assert ((emu >= 0.0) & (emu <= 1.0)).all()
