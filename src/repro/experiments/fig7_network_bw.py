"""Figure 7: memkeyval network bandwidth under Heracles with iperf.

memkeyval is network-bound at peak, and the iperf antagonist saturates
transmit bandwidth with mice flows — yet under Heracles the network
subcontroller caps the BE class via HTB so that "Heracles partitions
network transmit bandwidth correctly to protect the LC workload"
(§5.1).  This experiment records LC and BE egress bandwidth vs load:
the BE share shrinks as memkeyval's own traffic grows, and memkeyval
keeps its SLO throughout (its Figure 4 panel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hardware.spec import MachineSpec, default_machine_spec
from .common import run_colocation
from .fig4_latency_slo import DEFAULT_LOADS


@dataclass
class NetworkBwPoint:
    load: float
    lc_gbps: float
    be_gbps: float
    worst_slo: float

    @property
    def total_gbps(self) -> float:
        return self.lc_gbps + self.be_gbps


def run_fig7(loads: Sequence[float] = DEFAULT_LOADS,
             duration_s: float = 900.0,
             spec: Optional[MachineSpec] = None,
             seed: int = 0) -> List[NetworkBwPoint]:
    spec = spec or default_machine_spec()
    points = []
    for load in loads:
        result = run_colocation("memkeyval", "iperf", load,
                                duration_s=duration_s, spec=spec, seed=seed)
        points.append(NetworkBwPoint(
            load=load,
            lc_gbps=result.mean_lc_net_gbps,
            be_gbps=result.mean_be_net_gbps,
            worst_slo=result.history.worst_window_slo(skip_s=240.0),
        ))
    return points


def main() -> None:
    from ..analysis.tables import render_load_series_table
    points = run_fig7()
    loads = [p.load for p in points]
    link = default_machine_spec().nic.link_gbps
    print(render_load_series_table(
        {
            "memkeyval bw (frac of link)": [p.lc_gbps / link for p in points],
            "iperf bw (frac of link)": [p.be_gbps / link for p in points],
            "worst tail (frac of SLO)": [p.worst_slo for p in points],
        },
        loads, title="memkeyval network bandwidth under Heracles"))


if __name__ == "__main__":
    main()
