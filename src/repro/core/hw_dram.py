"""Per-core DRAM bandwidth accounting — the paper's wished-for hardware.

§4.2: "Ideally, Heracles should require no offline information other
than SLO targets.  Unfortunately, one shortcoming of current hardware
makes this difficult": the Intel chips of 2015 could not attribute DRAM
traffic to cores, hence the offline LC bandwidth model.  "Once we have
hardware support for per-core DRAM bandwidth accounting [30], we can
eliminate this offline model."

That hardware eventually shipped (Intel Memory Bandwidth Monitoring).
This module implements the variant the paper anticipates: a core &
memory subcontroller that reads the LC workload's bandwidth directly
from per-task counters instead of predicting it from an offline
(load, LLC ways) table.  A small multiplicative margin stands in for
the measurement being a snapshot rather than a forecast.

The ablation bench (`benchmarks/test_bench_hw_dram.py`) compares the
two designs: the counter-based controller needs no profiling step and
is immune to model staleness, at the cost of reacting to bandwidth
changes instead of anticipating them.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..hardware.counters import CounterBank
from ..sim.actuators import Actuators
from ..sim.engine import ColocationSim
from ..sim.monitors import LatencyMonitor
from .config import HeraclesConfig
from .core_memory import CoreMemoryController
from .state import ControlState


class HardwareCountedCoreMemoryController(CoreMemoryController):
    """Algorithm 2 with LcBwModel() replaced by a live counter read."""

    def __init__(self, config: HeraclesConfig, state: ControlState,
                 actuators: Actuators, counters: CounterBank,
                 lc_task: str, be_task: str,
                 be_throughput_fn: Callable[[], float],
                 monitor: Optional[LatencyMonitor] = None,
                 slo_target_ms: Optional[float] = None,
                 measurement_margin: float = 1.10):
        if measurement_margin < 1.0:
            raise ValueError("measurement margin must be >= 1.0")
        super().__init__(config, state, actuators, counters,
                         dram_model=None,  # type: ignore[arg-type]
                         lc_task=lc_task, be_task=be_task,
                         be_throughput_fn=be_throughput_fn,
                         monitor=monitor, slo_target_ms=slo_target_ms)
        self.measurement_margin = measurement_margin

    def lc_bw_model_gbps(self) -> float:
        """LcBw per socket, *measured* rather than modelled.

        The margin covers the forecast gap: a measurement says what the
        LC workload used last interval, not what it will use after the
        next actuation, so the controller leaves a little room.
        """
        measured = self.counters.dram_bw_of(self.lc_task)
        sockets = self.actuators.spec.sockets
        return measured * self.measurement_margin / max(1, sockets)


def attach_hardware_counted_heracles(sim: ColocationSim,
                                     config: Optional[HeraclesConfig] = None):
    """Build a Heracles whose core & memory loop uses per-core DRAM
    counters — no offline profiling step at all.

    Returns the assembled :class:`~repro.core.controller.
    HeraclesController` with its ``core_memory`` member swapped for the
    hardware-counted variant.
    """
    from .controller import HeraclesController
    from .dram_model import LcDramBandwidthModel
    import numpy as np

    if sim.be is None:
        raise ValueError("Heracles manages a colocation; the sim has no "
                         "BE task")
    config = config or HeraclesConfig()
    # A trivial placeholder model satisfies the constructor; the
    # subcontroller that would use it is replaced below.
    placeholder = LcDramBandwidthModel(
        loads=np.array([0.0, 1.0]), ways=np.array([1.0, 2.0]),
        bandwidth_gbps=np.zeros((2, 2)))
    controller = HeraclesController.for_sim(sim, config=config,
                                            dram_model=placeholder)
    controller.core_memory = HardwareCountedCoreMemoryController(
        config, controller.state, sim.actuators, sim.counters,
        lc_task=sim.lc.name, be_task=sim.be.name,
        be_throughput_fn=controller.core_memory.be_throughput_fn,
        monitor=sim.latency_monitor,
        slo_target_ms=sim.lc.profile.slo_latency_ms)
    return controller
