#!/usr/bin/env python
"""First-divergence explainer: where do two runs of one spec split?

Usage::

    python tools/diff_runs.py scenario SPEC.yaml \
        [--engine-a sharded --engine-b mega] [--jobs-a 1 --jobs-b 4] \
        [--shard-leaves-a N --shard-leaves-b N] [--context 5] [--json]
    python tools/diff_runs.py trace A.jsonl B.jsonl

``scenario`` mode runs one fleet- or schedule-shaped spec twice — under
two engine/sharding/job-count configurations that the bit-identity
contract says must agree — with per-tick slack collection
(``slack_epoch_s = dt_s``) and decision tracing forced on.  It then
reports the first (tick, column, member) where the runs disagree,
together with the nearest preceding decision-trace events for that
member, so a regression reads as "grant_cores for leaf 17 split at
t=840 s, right after chaos disable_be fired there" instead of a bare
summary mismatch.  Exit status: 0 when bit-identical, 1 on divergence.

``trace`` mode diffs two merged decision-trace JSONL files (the
``--trace`` CLI artifact) line by line and reports the first differing
event — the canonical ordering makes byte comparison meaningful.

The guts are importable (:func:`first_divergence`,
:func:`fleet_columns`, :func:`nearest_events`) so tests can feed
hand-built column dicts — e.g. a deliberately re-broken engine loop —
through the same explainer the CLI uses.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

import numpy as np  # noqa: E402

from repro.obs.trace import TRACE_ENV, iter_events, read_jsonl  # noqa: E402

#: Slack-view fields compared per (tick, leaf) in scenario mode.
SLACK_FIELDS = ("grant_cores", "harvest_core_s", "latched")
#: Fleet-telemetry per-cluster fields compared per (record, cluster).
TELEMETRY_FIELDS = ("load", "root_latency_ms", "root_slo_fraction", "emu")


@dataclasses.dataclass
class Divergence:
    """The first point where two runs of one spec disagree.

    Attributes:
        tick: row index into the compared columns (epoch/record index).
        t_s: simulated time of that row.
        column: name of the first differing column (ties broken by
            sorted column name, then member index).
        member: member-axis index of the first differing entry, or
            ``None`` for a shared (1-D) column.
        value_a: run A's value at the divergence point.
        value_b: run B's value at the divergence point.
        context: nearest preceding decision-trace events for this
            member (run-scoped ``member == -1`` events included),
            newest last; empty when no trace was supplied.
    """

    tick: int
    t_s: float
    column: str
    member: Optional[int]
    value_a: float
    value_b: float
    context: List[Dict[str, Any]] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """The divergence as a JSON-ready dict."""
        return dataclasses.asdict(self)


def _unequal(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise "really differs" mask: NaN == NaN, else exact."""
    both_nan = np.isnan(a) & np.isnan(b)
    return ~both_nan & ~(a == b)


def nearest_events(trace: Mapping[str, np.ndarray], t_s: float,
                   member: Optional[int] = None,
                   count: int = 5,
                   window: float = 0.0) -> List[Dict[str, Any]]:
    """The last ``count`` trace events at or before ``t_s + window``.

    When ``member`` is given, only that member's events plus run-scoped
    (``member == -1``) events qualify — the events most likely to have
    *caused* a per-member divergence.  Events arrive in canonical
    (time-major) order, so "nearest preceding" is just the tail of the
    filtered prefix.  ``window`` extends the cutoff past the row's own
    timestamp: a slack row stamped at its epoch *start* is written by
    the *next* tick's actuator gather (the one-tick lag contract), so
    its triggering event can carry a timestamp up to one epoch later.
    """
    picked: List[Dict[str, Any]] = []
    for event in iter_events(trace):
        if event["t_s"] > t_s + window + 1e-9:
            break
        if member is None or event["member"] in (member, -1):
            picked.append(event)
    return picked[-count:]


def first_divergence(times_s: np.ndarray,
                     cols_a: Mapping[str, np.ndarray],
                     cols_b: Mapping[str, np.ndarray],
                     trace: Optional[Mapping[str, np.ndarray]] = None,
                     context: int = 5,
                     window: float = 0.0) -> Optional[Divergence]:
    """Find the earliest (tick, column, member) where two runs split.

    Args:
        times_s: (T,) shared row clock for every compared column.
        cols_a: run A's columns, each (T,) or (T, N) — named arrays.
        cols_b: run B's columns over the same names and shapes.
        trace: optional merged decision-trace payload used to attach
            explanatory context events to the divergence.
        context: how many preceding trace events to attach.
        window: context-event lookahead past the divergent row's
            timestamp (see :func:`nearest_events`); pass the row span
            when rows are stamped at their *start*.

    Returns:
        The minimal divergence under (tick, column name, member)
        ordering, or ``None`` when every column is bit-identical.

    Raises:
        ValueError: column names or shapes differ between the runs —
            that is a structural mismatch, not a numeric divergence.
    """
    if sorted(cols_a) != sorted(cols_b):
        raise ValueError(f"column sets differ: {sorted(cols_a)} vs "
                         f"{sorted(cols_b)}")
    best: Optional[Tuple[int, str, int]] = None
    best_vals = (np.nan, np.nan)
    best_shared = False
    for name in sorted(cols_a):
        a = np.asarray(cols_a[name], dtype=float)
        b = np.asarray(cols_b[name], dtype=float)
        if a.shape != b.shape:
            raise ValueError(f"column {name!r}: shape {a.shape} vs "
                             f"{b.shape}")
        shared = a.ndim == 1
        if shared:
            a = a[:, None]
            b = b[:, None]
        mask = _unequal(a, b)
        rows = mask.any(axis=1)
        if not rows.any():
            continue
        tick = int(np.argmax(rows))
        member = int(np.argmax(mask[tick]))
        key = (tick, name, member)
        if best is None or key < best:
            best = key
            best_vals = (float(a[tick, member]), float(b[tick, member]))
            best_shared = shared
    if best is None:
        return None
    tick, name, member = best
    t_s = float(np.asarray(times_s, dtype=float)[tick])
    events: List[Dict[str, Any]] = []
    if trace is not None:
        events = nearest_events(trace, t_s,
                                member=None if best_shared else member,
                                count=context, window=window)
    return Divergence(tick=tick, t_s=t_s, column=name,
                      member=None if best_shared else member,
                      value_a=best_vals[0], value_b=best_vals[1],
                      context=events)


def fleet_columns(result) -> List[Tuple[str, np.ndarray,
                                        Dict[str, np.ndarray], float]]:
    """Comparable column groups from a :class:`FleetResult`.

    Returns ``(group, times_s, columns, window)`` tuples — the per-leaf
    slack view (when the run collected it) on the epoch clock, and the
    per-cluster fleet telemetry on the record clock.  Groups keep their
    own clocks; the caller diffs each group independently and reports
    the earliest hit.  ``window`` is the context-event lookahead for
    that group: slack rows are stamped at their epoch *start* but
    written by the next tick's gather, so their triggering event can
    sit one epoch past the row timestamp.
    """
    groups: List[Tuple[str, np.ndarray, Dict[str, np.ndarray], float]] = []
    slack = result.slack
    if slack is not None:
        cols = {name: np.asarray(getattr(slack, name), dtype=float)
                for name in SLACK_FIELDS}
        epoch_len = np.asarray(slack.epoch_len_s, dtype=float)
        window = float(epoch_len.flat[0]) if epoch_len.size else 0.0
        groups.append(("slack", np.asarray(slack.epoch_t_s, dtype=float),
                       cols, window))
    telemetry = result.telemetry
    cols = {name: telemetry.column(name) for name in TELEMETRY_FIELDS}
    for name in telemetry.FLEET_FIELDS:
        cols[name] = telemetry.fleet_column(name)
    groups.append(("telemetry", telemetry.times(), cols, 0.0))
    return groups


def _member_label(result, group: str, member: Optional[int]) -> str:
    """Human label for a divergent member index within a group."""
    if member is None:
        return "(fleet-wide)"
    if group == "slack" and result.slack is not None:
        slack = result.slack
        cluster = slack.cluster_names[int(slack.leaf_cluster[member])]
        return f"(cluster {cluster!r})"
    if group == "telemetry":
        return f"(cluster {result.telemetry.cluster_names[member]!r})"
    return ""


def _format_event(event: Mapping[str, Any]) -> str:
    """One trace event as a compact single-line summary."""
    parts = [f"t={event['t_s']:g}s", f"{event['source']}/{event['kind']}",
             f"member={event['member']}"]
    for field in ("a", "b", "slo", "load"):
        value = event.get(field)
        if value is not None and not (isinstance(value, float)
                                      and np.isnan(value)):
            parts.append(f"{field}={value:g}")
    return " ".join(parts)


def _fleet_spec_of(spec):
    """The FleetSpec inside a fleet- or schedule-shaped scenario."""
    if spec.fleet is not None:
        return spec.fleet
    if spec.schedule is not None:
        return spec.schedule.fleet
    raise SystemExit("diff_runs: scenario mode needs a fleet- or "
                     "schedule-shaped spec")


def _run_variant(spec, engine: Optional[str], shard_leaves: Optional[int],
                 jobs: Optional[int]):
    """One traced per-tick-slack fleet run under a config override."""
    from repro.scenarios.compiler import compile_scenario
    from repro.sim.runner import JOBS_ENV

    fleet_spec = _fleet_spec_of(spec)
    overrides: Dict[str, Any] = {}
    if engine is not None:
        overrides["engine"] = engine
    if shard_leaves is not None:
        overrides["shard_leaves"] = shard_leaves
    if overrides:
        fleet_spec = dataclasses.replace(fleet_spec, **overrides)
    saved = os.environ.get(JOBS_ENV)
    if jobs is not None:
        os.environ[JOBS_ENV] = str(jobs)
    try:
        fleet = compile_scenario(spec)._build_fleet(fleet_spec)
        return fleet.run(spec.duration_s, dt_s=spec.dt_s,
                         slack_epoch_s=spec.dt_s)
    finally:
        if jobs is not None:
            if saved is None:
                os.environ.pop(JOBS_ENV, None)
            else:
                os.environ[JOBS_ENV] = saved


def _scenario_mode(args) -> int:
    """Run the spec twice and explain the first divergence, if any."""
    from repro.scenarios import load_scenario

    spec = load_scenario(args.spec)
    spec.validate()
    os.environ[TRACE_ENV] = "1"
    result_a = _run_variant(spec, args.engine_a, args.shard_leaves_a,
                            args.jobs_a)
    result_b = _run_variant(spec, args.engine_b, args.shard_leaves_b,
                            args.jobs_b)
    hits: List[Tuple[str, Divergence]] = []
    groups_b = {group: (times, cols)
                for group, times, cols, _ in fleet_columns(result_b)}
    compared = 0
    for group, times, cols, window in fleet_columns(result_a):
        times_b, cols_b = groups_b[group]
        if not np.array_equal(times, times_b):
            raise SystemExit(f"diff_runs: {group} clocks differ between "
                             "runs — specs are not comparable")
        compared += len(cols)
        hit = first_divergence(times, cols, cols_b,
                               trace=result_a.trace, context=args.context,
                               window=window)
        if hit is not None:
            hits.append((group, hit))
    if not hits:
        if args.json:
            print(json.dumps({"diverged": False,
                              "columns_compared": compared},
                             sort_keys=True))
        else:
            print(f"no divergence: {compared} columns bit-identical")
        return 0
    group, div = min(hits, key=lambda pair: (pair[1].t_s, pair[0]))
    if args.json:
        doc = {"diverged": True, "group": group, **div.to_dict()}
        print(json.dumps(doc, sort_keys=True))
        return 1
    where = f"member {div.member}" if div.member is not None else "shared"
    label = _member_label(result_a, group, div.member)
    print(f"runs diverge at t={div.t_s:g}s (tick {div.tick}): "
          f"{group} column {div.column!r} {where} {label}: "
          f"a={div.value_a:g} b={div.value_b:g}")
    if div.context:
        print("nearest preceding trace events:")
        for event in div.context:
            print(f"  {_format_event(event)}")
    else:
        print("no trace events at or before the divergence")
    return 1


def _trace_mode(args) -> int:
    """Diff two canonical trace JSONL files event by event."""
    events_a = read_jsonl(args.trace_a)
    events_b = read_jsonl(args.trace_b)
    for index, (ev_a, ev_b) in enumerate(zip(events_a, events_b)):
        if ev_a != ev_b:
            print(f"traces diverge at event {index}:")
            print(f"  a: {_format_event(ev_a)}")
            print(f"  b: {_format_event(ev_b)}")
            return 1
    if len(events_a) != len(events_b):
        short, extra = (("a", events_b) if len(events_a) < len(events_b)
                        else ("b", events_a))
        index = min(len(events_a), len(events_b))
        print(f"trace {short} ends early at event {index}; "
              f"other continues with:")
        print(f"  {_format_event(extra[index])}")
        return 1
    print(f"traces identical: {len(events_a)} events")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="first-divergence explainer for paired runs")
    sub = parser.add_subparsers(dest="mode", required=True)
    scenario = sub.add_parser(
        "scenario", help="run one spec twice and diff per-tick columns")
    scenario.add_argument("spec", help="fleet/schedule-shaped spec file")
    scenario.add_argument("--engine-a", default=None,
                          help="fleet engine for run A (sharded|mega)")
    scenario.add_argument("--engine-b", default=None,
                          help="fleet engine for run B (sharded|mega)")
    scenario.add_argument("--shard-leaves-a", type=int, default=None,
                          help="shard width override for run A")
    scenario.add_argument("--shard-leaves-b", type=int, default=None,
                          help="shard width override for run B")
    scenario.add_argument("--jobs-a", type=int, default=None,
                          help="REPRO_JOBS for run A")
    scenario.add_argument("--jobs-b", type=int, default=None,
                          help="REPRO_JOBS for run B")
    scenario.add_argument("--context", type=int, default=5,
                          help="trace events to attach (default 5)")
    scenario.add_argument("--json", action="store_true",
                          help="machine-readable one-line JSON verdict")
    trace = sub.add_parser(
        "trace", help="diff two canonical --trace JSONL files")
    trace.add_argument("trace_a", help="first trace JSONL file")
    trace.add_argument("trace_b", help="second trace JSONL file")
    args = parser.parse_args(argv)
    if args.mode == "scenario":
        return _scenario_mode(args)
    return _trace_mode(args)


if __name__ == "__main__":
    sys.exit(main())
