"""Long-horizon telemetry gate: chunked spill memory + checkpoint cost.

Two contractual properties of the PR-9 checkpoint/spill subsystem are
gated here:

* **spill memory**: a 1000-leaf, 7200-tick (two simulated hours at
  ``dt=1``) batch telemetry store kept fully in RAM must cost at least
  5x more resident history memory than the same store spilling chunks
  to disk — with the spilled store's windowed aggregates (streamed
  over memory-mapped chunks) matching the materialized reductions
  (max bit-exact, mean/worst-window within 1e-12 relative).
* **checkpoint resume**: an 8-leaf managed fleet saved at T/2 and
  resumed to T reproduces the straight run **bit-identically**, the
  resumed segment costs roughly half a straight run, and the archive
  is compact enough to branch from freely.

The measurements land in ``BENCH_PR9.json`` (path overridable via
``REPRO_BENCH_CHECKPOINT_OUT``); ``tools/bench_report.py`` folds them
into the CI perf artifact.
"""

import json
import os
import time

import numpy as np
from conftest import regenerate

from repro.fleet import ClusterPlan, ShardedFleetSim
from repro.metrics.columns import BatchColumnStore
from repro.metrics.windows import (max_after, mean_after, streaming_max,
                                   streaming_mean, streaming_worst_window,
                                   worst_window_mean)
from repro.workloads.traces import websearch_cluster_trace

LEAVES = 1000
TICKS = 7200
CHUNK_ROWS = 512
MIN_SPILL_RATIO = 5.0

FLEET_LEAVES = 8
FLEET_DURATION_S = 240.0
FLEET_SEED = 3

OUT_ENV = "REPRO_BENCH_CHECKPOINT_OUT"
DEFAULT_OUT = "BENCH_PR9.json"

FIELDS = [("t_s", np.float64), ("tail_latency_ms", np.float64),
          ("slo_fraction", np.float64), ("emu", np.float64),
          ("be_throughput_norm", np.float64), ("load", np.float64)]


def _fill(store):
    """Synthetic-but-shapely fleet telemetry, identical per call."""
    rng = np.random.default_rng(9)
    for k in range(TICKS):
        load = 0.5 + 0.4 * np.sin(2 * np.pi * k / 3600.0)
        noise = rng.standard_normal(LEAVES)
        tails = 18.0 + 30.0 * load + 2.0 * noise
        store.append_tick({
            "t_s": float(k),
            "tail_latency_ms": tails,
            "slo_fraction": tails / 70.0,
            "emu": 0.9 + 0.05 * noise,
            "be_throughput_norm": np.clip(1.0 - load + 0.1 * noise,
                                          0.0, 1.0),
            "load": np.full(LEAVES, load),
        })
    return store


def _long_horizon(spill_dir):
    """The benchmarked path: fill a spilled store, stream aggregates."""
    store = _fill(BatchColumnStore(FIELDS, n=LEAVES,
                                   spill_dir=spill_dir,
                                   spill_chunk_rows=CHUNK_ROWS))
    pairs = lambda name: zip(store.column_chunks(name),  # noqa: E731
                             store.column_chunks("t_s"))
    # Per-tick cluster mean (a 1-D series) for the sliding window; the
    # row reduction is chunk-local, so chunking cannot change it.
    cluster_slo = lambda: ((chunk.mean(axis=1), t)  # noqa: E731
                           for chunk, t in pairs("slo_fraction"))
    aggregates = {
        "mean_tail_ms": streaming_mean(pairs("tail_latency_ms")),
        "max_tail_ms": streaming_max(pairs("tail_latency_ms")),
        "worst_window_slo": streaming_worst_window(cluster_slo,
                                                   window_s=60.0),
    }
    return store, aggregates


def _fleet(events=()):
    return ShardedFleetSim(
        [ClusterPlan(name="bench", leaves=FLEET_LEAVES,
                     trace=websearch_cluster_trace(seed=FLEET_SEED),
                     seed=FLEET_SEED, events=tuple(events))],
        shard_leaves=FLEET_LEAVES)


def _dir_bytes(path):
    return sum(os.path.getsize(os.path.join(root, name))
               for root, _, names in os.walk(path) for name in names)


def test_bench_checkpoint_spill_and_resume(benchmark, tmp_path):
    # -- spill memory: in-RAM vs chunked store, same telemetry ---------
    spilled, streamed = regenerate(benchmark, _long_horizon,
                                   str(tmp_path / "spill"))
    in_ram = _fill(BatchColumnStore(FIELDS, n=LEAVES))
    assert len(spilled) == len(in_ram) == TICKS

    in_ram_bytes = in_ram.nbytes(allocated=True)
    resident_bytes = spilled.nbytes(allocated=True)
    disk_bytes = spilled.spilled_nbytes()
    spill_ratio = in_ram_bytes / resident_bytes

    # Streamed aggregates vs the materialized reductions (the spilled
    # column materializes back to exactly what the in-RAM store holds).
    t = in_ram.column("t_s")
    tails = in_ram.column("tail_latency_ms")
    assert np.array_equal(spilled.column("tail_latency_ms"), tails)
    want = {
        "mean_tail_ms": mean_after(tails, t),
        "max_tail_ms": max_after(tails, t),
        "worst_window_slo": worst_window_mean(
            in_ram.column("slo_fraction").mean(axis=1), t,
            window_s=60.0),
    }
    assert streamed["max_tail_ms"] == want["max_tail_ms"]  # bit-exact
    for key in ("mean_tail_ms", "worst_window_slo"):
        np.testing.assert_allclose(streamed[key], want[key], rtol=1e-12)

    # -- checkpoint: save at T/2, resume to T, bit-identical -----------
    ckpt = str(tmp_path / "ckpt")
    start = time.perf_counter()
    straight = _fleet().run(FLEET_DURATION_S, processes=1)
    straight_s = time.perf_counter() - start
    start = time.perf_counter()
    _fleet().run(FLEET_DURATION_S, processes=1, checkpoint_dir=ckpt,
                 checkpoint_at_s=FLEET_DURATION_S / 2)
    save_run_s = time.perf_counter() - start
    start = time.perf_counter()
    resumed = _fleet().run(FLEET_DURATION_S, processes=1,
                           resume_from=ckpt)
    resume_run_s = time.perf_counter() - start

    a = straight.cluster("bench").history
    b = resumed.cluster("bench").history
    assert len(a) == len(b)
    identical = all(
        np.array_equal(a.column(name), b.column(name))
        for name in ("t_s", "load", "root_latency_ms",
                     "root_slo_fraction", "emu"))
    archive_bytes = _dir_bytes(ckpt)

    report = {
        "benchmark": "test_bench_checkpoint",
        "leaves": LEAVES,
        "ticks": TICKS,
        "spill_chunk_rows": CHUNK_ROWS,
        "history_bytes_in_ram": int(in_ram_bytes),
        "history_bytes_resident_spilled": int(resident_bytes),
        "history_bytes_on_disk": int(disk_bytes),
        "spill_memory_ratio": round(spill_ratio, 2),
        "fleet_leaves": FLEET_LEAVES,
        "fleet_duration_s": FLEET_DURATION_S,
        "checkpoint_archive_bytes": int(archive_bytes),
        "straight_run_s": round(straight_s, 3),
        "checkpointing_run_s": round(save_run_s, 3),
        "resumed_run_s": round(resume_run_s, 3),
        "resume_bit_identical": bool(identical),
    }
    out_path = os.environ.get(OUT_ENV, DEFAULT_OUT)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    print(f"{LEAVES}-leaf, {TICKS}-tick history "
          f"({CHUNK_ROWS}-row chunks):")
    print(f"  resident: in-RAM {in_ram_bytes / 1e6:.1f} MB vs spilled "
          f"{resident_bytes / 1e6:.1f} MB -> {spill_ratio:.1f}x lower "
          f"({disk_bytes / 1e6:.1f} MB on disk)")
    print(f"  {FLEET_LEAVES}-leaf fleet, {FLEET_DURATION_S:.0f} s: "
          f"straight {straight_s:.2f} s, checkpointing {save_run_s:.2f} "
          f"s, resumed-half {resume_run_s:.2f} s "
          f"(archive {archive_bytes / 1e6:.2f} MB)")
    print(f"  report: {out_path}")

    assert spill_ratio >= MIN_SPILL_RATIO, (
        f"spill only bounds resident history to {spill_ratio:.2f}x "
        f"below in-RAM (need >= {MIN_SPILL_RATIO}x)")
    assert identical, "resumed fleet run diverged from the straight run"
