#!/usr/bin/env python3
"""A day in the life of a Heracles-managed server, plus the TCO story.

Drives a websearch server through a compressed diurnal load pattern
(trough 20%, peak 90%) with streetview as the batch filler, then feeds
the measured utilization into the paper's §5.3 TCO model to show why
colocation beats energy-proportionality for datacenter economics.

Run:
    python examples/diurnal_datacenter.py
"""

from repro import HeraclesController, build_colocation
from repro.analysis.tco import TcoModel
from repro.workloads.traces import DiurnalTrace


def main() -> None:
    # One "day" compressed into 2 simulated hours so the example runs in
    # seconds; use period_s=24*3600 for the full-fidelity version.
    trace = DiurnalTrace(low=0.20, high=0.90, period_s=2 * 3600,
                         noise_sigma=0.01, seed=11)
    sim = build_colocation("websearch", "streetview", trace=trace, seed=11)
    HeraclesController.for_sim(sim)
    history = sim.run(2 * 3600)

    print("hour  load   tail/SLO  EMU   BE cores")
    for hour_start in range(0, 2 * 3600, 600):
        records = [r for r in history.records
                   if hour_start <= r.t_s < hour_start + 600]
        load = sum(r.load for r in records) / len(records)
        slo = max(r.slo_fraction for r in records)
        emu = sum(r.emu for r in records) / len(records)
        cores = records[-1].be_cores
        print(f"{hour_start / 3600:4.1f}  {load:5.0%}  {slo:8.0%}  "
              f"{emu:4.0%}  {cores:8d}")

    baseline_util = history.mean("load", skip_s=600)
    heracles_util = history.mean_emu(skip_s=600)
    print(f"\nmean utilization: {baseline_util:.0%} without colocation, "
          f"{heracles_util:.0%} with Heracles")

    tco = TcoModel()
    gain = tco.throughput_per_tco_gain(baseline_util, heracles_util)
    ep_gain = tco.energy_proportionality_gain(baseline_util)
    print(f"throughput/TCO gain from Heracles            : +{gain:.0%}")
    print(f"throughput/TCO gain from energy-proportionality: +{ep_gain:.0%}")


if __name__ == "__main__":
    main()
