"""The websearch minicluster experiment (§5.3, Figure 8).

Tens of leaf servers behind one fan-out root, driven by a 12-hour
diurnal trace (load 20%-90%).  Heracles runs on every leaf; brain runs
on half the leaves and streetview on the other half.  The experiment
reports, over the trace: root latency vs the cluster SLO, and
cluster-wide EMU (average ~90%, minimum ~80% in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.config import HeraclesConfig
from ..core.dram_model import profile_lc_dram_model
from ..hardware.spec import MachineSpec, default_machine_spec
from ..workloads.latency_critical import make_lc_workload
from ..workloads.traces import LoadTrace, websearch_cluster_trace
from .leaf import Leaf, LeafConfig
from .root import RootAggregator


@dataclass
class ClusterRecord:
    """Cluster-level observables at one instant."""

    t_s: float
    load: float
    root_latency_ms: float
    root_slo_fraction: float
    emu: float


@dataclass
class ClusterHistory:
    records: List[ClusterRecord] = field(default_factory=list)

    def column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.records])

    def max_root_slo_fraction(self, skip_s: float = 0.0) -> float:
        vals = [r.root_slo_fraction for r in self.records if r.t_s >= skip_s]
        return max(vals) if vals else 0.0

    def mean_emu(self, skip_s: float = 0.0) -> float:
        vals = [r.emu for r in self.records if r.t_s >= skip_s]
        return float(np.mean(vals)) if vals else 0.0

    def min_emu(self, skip_s: float = 0.0) -> float:
        vals = [r.emu for r in self.records if r.t_s >= skip_s]
        return min(vals) if vals else 0.0


class WebsearchCluster:
    """A managed (or baseline) websearch minicluster."""

    def __init__(self,
                 leaves: int = 20,
                 spec: Optional[MachineSpec] = None,
                 trace: Optional[LoadTrace] = None,
                 heracles_config: Optional[HeraclesConfig] = None,
                 managed: bool = True,
                 record_period_s: float = 30.0,
                 seed: int = 0):
        if leaves < 2:
            raise ValueError("a cluster needs at least two leaves")
        self.spec = spec or default_machine_spec()
        self.trace = trace or websearch_cluster_trace(seed=seed)
        self.record_period_s = record_period_s
        self.managed = managed

        # SLO targets.  The root SLO is the baseline's µ/30s at 90% load
        # without colocation (§5.3) — which, through the fan-out, already
        # includes the straggler amplification of the worst leaf and its
        # measurement noise.  The uniform leaf target is the per-leaf
        # tail at that operating point.
        reference = make_lc_workload("websearch", self.spec)
        self.leaf_slo_ms = self._baseline_tail_ms(reference, load=0.90)
        noise_sigma = reference.profile.noise_sigma
        # E[max of n lognormal noise draws] grows ~ sigma * sqrt(2 ln n).
        straggler_noise = float(np.exp(
            noise_sigma * np.sqrt(2.0 * np.log(max(2, leaves)))))
        self.root_slo_ms = self.leaf_slo_ms * straggler_noise

        # "Heracles shares the same offline model ... across all leaves."
        shared_model = profile_lc_dram_model(reference) if managed else None

        self.leaves: List[Leaf] = []
        for i in range(leaves):
            be_name = "brain" if i % 2 == 0 else "streetview"
            leaf = Leaf(
                LeafConfig(index=i, be_name=be_name,
                           leaf_slo_ms=self.leaf_slo_ms,
                           seed=seed * 1000 + i),
                trace=self.trace, spec=self.spec,
                shared_dram_model=shared_model,
                heracles_config=heracles_config,
                managed=managed)
            self.leaves.append(leaf)

        self.root = RootAggregator()
        self.history = ClusterHistory()
        self.time_s = 0.0

    @staticmethod
    def _baseline_tail_ms(lc, load: float) -> float:
        from ..hardware.server import Server
        from ..workloads.base import Allocation, spread_cores
        server = Server(lc.spec)
        alloc = Allocation(cores_by_socket=spread_cores(
            lc.spec.total_cores, lc.spec))
        usages = server.resolve([lc.demand(load, alloc)])
        return lc.tail_latency_ms(
            load, usages[lc.name],
            link_utilization=server.telemetry.link_utilization)

    # ------------------------------------------------------------------

    def tick(self) -> None:
        tails = []
        emus = []
        for leaf in self.leaves:
            record = leaf.tick()
            tails.append(record.tail_latency_ms)
            emus.append(record.emu)
        root_latency = self.root.record(self.time_s, tails)
        if (self.time_s % self.record_period_s) < 1.0:
            windowed = self.root.windowed_latency_ms()
            self.history.records.append(ClusterRecord(
                t_s=self.time_s,
                load=self.trace.clipped(self.time_s),
                root_latency_ms=windowed,
                root_slo_fraction=windowed / self.root_slo_ms,
                emu=float(np.mean(emus)),
            ))
        self.time_s += 1.0

    def run(self, duration_s: float) -> ClusterHistory:
        for _ in range(int(duration_s)):
            self.tick()
        return self.history
