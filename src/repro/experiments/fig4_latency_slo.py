"""Figure 4: LC tail latency under Heracles across loads and BE tasks.

"At all loads and in all colocation cases, there are no SLO violations
with Heracles" (§5.2) — the headline result.  For each LC workload and
each BE colocation, sweep load 5%..95% and record the worst-case
windowed tail latency as a fraction of the SLO, plus the no-colocation
baseline.

Figures 5, 6 and 7 are different projections of the same runs, so the
sweep is shared: :func:`run_sweep` returns the full
:class:`~repro.experiments.common.ColocationResult` grid and each
figure module extracts its series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..hardware.spec import MachineSpec, default_machine_spec
from ..workloads.latency_critical import LC_PROFILES
from .common import ColocationResult, baseline_cell, colocation_sweep

#: BE tasks shown in Figure 4 (iperf omitted for websearch/ml_cluster in
#: the paper's plot because they are network-insensitive; we compute it
#: anyway).
FIG4_BE_TASKS = ("stream-LLC", "stream-DRAM", "cpu_pwr", "brain",
                 "streetview", "iperf")

#: A lighter load axis than the paper's 19 points, dense enough to show
#: the shape; pass ``loads=load_sweep()`` for the full grid.
DEFAULT_LOADS = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95)


@dataclass
class ColocationSweep:
    """All Figure 4-7 measurements for one LC workload."""

    lc_name: str
    loads: List[float]
    baseline_slo: List[float] = field(default_factory=list)
    results: Dict[str, List[ColocationResult]] = field(default_factory=dict)

    def worst_slo_series(self, be_name: str) -> List[float]:
        return [r.history.worst_window_slo(skip_s=240.0)
                for r in self.results[be_name]]

    def emu_series(self, be_name: str) -> List[float]:
        return [r.mean_emu for r in self.results[be_name]]

    def metric_series(self, be_name: str, attr: str) -> List[float]:
        return [getattr(r, attr) for r in self.results[be_name]]

    def no_violations(self, be_name: str, threshold: float = 1.0) -> bool:
        return all(v <= threshold for v in self.worst_slo_series(be_name))


def run_sweep(lc_name: str,
              be_tasks: Sequence[str] = FIG4_BE_TASKS,
              loads: Sequence[float] = DEFAULT_LOADS,
              duration_s: float = 900.0,
              spec: Optional[MachineSpec] = None,
              seed: int = 0,
              processes: Optional[int] = None) -> ColocationSweep:
    """Run the Heracles colocation grid for one LC workload.

    The (BE task x load) grid fans out across a process pool via
    :func:`repro.experiments.common.colocation_sweep`; pass
    ``processes=1`` (or set ``REPRO_JOBS=1``) to force the serial path.
    """
    if lc_name not in LC_PROFILES:
        raise KeyError(f"unknown LC workload {lc_name!r}")
    spec = spec or default_machine_spec()
    sweep = ColocationSweep(lc_name=lc_name, loads=list(loads))
    from ..workloads.latency_critical import make_lc_workload
    lc = make_lc_workload(lc_name, spec)
    sweep.baseline_slo = [baseline_cell(lc, load, spec) for load in loads]
    sweep.results = colocation_sweep(
        lc_name, be_tasks, loads, duration_s=duration_s, spec=spec,
        seed=seed, processes=processes)
    return sweep


def run_fig4(lc_names: Optional[Sequence[str]] = None,
             loads: Sequence[float] = DEFAULT_LOADS,
             duration_s: float = 900.0) -> Dict[str, ColocationSweep]:
    """The full Figure 4 grid (shared by Figs. 5-7)."""
    lc_names = lc_names or sorted(LC_PROFILES)
    return {name: run_sweep(name, loads=loads, duration_s=duration_s)
            for name in lc_names}


def main() -> None:
    from ..analysis.tables import render_load_series_table
    sweeps = run_fig4()
    for name, sweep in sweeps.items():
        series = {"baseline": sweep.baseline_slo}
        for be_name in sweep.results:
            series[be_name] = sweep.worst_slo_series(be_name)
        print(render_load_series_table(
            series, sweep.loads,
            title=f"{name}: worst-case tail latency (fraction of SLO)"))
        print()


if __name__ == "__main__":
    main()
