#!/usr/bin/env python3
"""Bring your own workloads: define a new LC service and BE task.

The library's workload models are parametric, so adopting Heracles for
a service the paper never measured is a matter of writing down its
resource profile.  This example models:

* ``adserver`` — a latency-critical ad-ranking service: 10 ms 99%-ile
  SLO, moderately memory-hungry, compute-heavy;
* ``log-compactor`` — a best-effort background compaction job: streams
  a lot of data, cares about DRAM bandwidth, indifferent to cache.

and colocates them under Heracles across three load points.

Run:
    python examples/custom_workload.py
"""

from repro import HeraclesController
from repro.perf.interference import InterferenceSensitivity
from repro.sim.engine import ColocationSim
from repro.workloads.best_effort import BestEffortWorkload, BeWorkloadProfile
from repro.workloads.latency_critical import (LatencyCriticalWorkload,
                                              LcWorkloadProfile)
from repro.workloads.traces import ConstantLoad

ADSERVER = LcWorkloadProfile(
    name="adserver",
    slo_latency_ms=10.0,
    slo_percentile=0.99,
    unloaded_tail_fraction=0.30,
    service_tail_mult=2.5,
    pool_size=6,
    dram_frac_at_peak=0.35,
    dram_load_exponent=1.2,
    net_frac_at_peak=0.20,
    net_flows=128,
    hot_mb=18.0,
    bulk_mb_at_peak=90.0,
    bulk_reuse=0.5,
    hot_access_fraction=0.45,
    compute_activity=0.85,
    sensitivity=InterferenceSensitivity(
        freq_exponent=0.9,
        hot_miss_weight=1.3,
        bulk_miss_weight=0.4,
        mem_time_fraction=0.3,
        ht_slowdown=0.2,
        ht_base_fraction=0.5,
        net_tail_gain=4.0,
    ),
    noise_sigma=0.05,
)

LOG_COMPACTOR = BeWorkloadProfile(
    name="log-compactor",
    activity=0.55,
    bulk_mb=512.0,       # streams far more than the LLC holds
    bulk_reuse=0.1,
    access_gbps_per_core=5.0,
    uncached_dram_gbps_per_core=2.0,
    mem_bound_fraction=0.55,
    cache_benefit=0.10,
)


def main() -> None:
    lc = LatencyCriticalWorkload(ADSERVER)
    print(f"adserver calibration: service time "
          f"{lc.base_service_ms:.2f} ms, peak {lc.peak_qps:,.0f} qps")

    for load in (0.25, 0.50, 0.75):
        be = BestEffortWorkload(LOG_COMPACTOR, lc.spec)
        sim = ColocationSim(lc=lc, trace=ConstantLoad(load), be=be, seed=3)
        HeraclesController.for_sim(sim)
        history = sim.run(900)
        worst = history.worst_window_slo(skip_s=240)
        print(f"load {load:.0%}: worst tail {worst * 100:.0f}% of SLO, "
              f"EMU {history.mean_emu(skip_s=240) * 100:.0f}%, "
              f"compactor got {history.last().be_cores} cores")


if __name__ == "__main__":
    main()
