"""Chaos events: engine-level fault injection shared by all engines.

Heracles must defend latency SLOs under *adverse* conditions — crashed
leaves, stragglers, power emergencies, network partitions — not just
the healthy fleets the registered scenarios simulate.  This module
defines the one event type every engine consumes:
:class:`ChaosEvent`, a timed, optionally member-targeted fault.

The contract mirrors the rest of the simulation stack: the scalar
:class:`~repro.sim.engine.ColocationSim`, the batched
:class:`~repro.sim.batch.BatchColocationSim`, and the mega
:class:`~repro.sim.megabatch.MegaClusterSim` all resolve the same
event schedule to bit-identical histories.  To make that possible the
semantics are defined once, here:

* Events fire at the **start** of the tick whose time satisfies
  ``at_s <= time_s`` (before load evaluation), in ``(at_s, order)``
  order, where ``order`` is the event's position in the schedule —
  ties are resolved by schedule order, identically in every engine.
* ``leaf_crash`` removes the member from physics and telemetry: its
  offered load and tail latency read as zero, its BE task is forced
  off every tick while down (so a ``leaf_restart`` rejoins *cold* —
  the controller re-enables BE from scratch), and its tail-noise
  stream still advances so the other members' draws are unaffected.
* ``straggler`` multiplies the member's achieved core frequency and
  DRAM bandwidth by ``value`` (a derate in (0, 1]); ``value=1.0``
  restores full speed.  Healthy members multiply by exactly 1.0 —
  a bitwise identity — so their physics is untouched.
* ``power_cap`` scales the member's TDP limit to ``value`` x stock.
  Telemetry and controllers keep reading power as a fraction of the
  *stock* TDP (RAPL reports the design power, not the cap).
* ``partition`` blacks out the root↔leaf link for ``value`` seconds:
  offered load is held at the root (reads as zero at the leaf) and
  the member's tail latency is pinned at 10x its SLO for the
  blackout.  BE work keeps running — only the LC path is cut.
* The legacy actuator actions (``enable_be`` … ``set_be_net_ceil``)
  are also accepted so fleet scenarios can drive actuators through
  the same schedule; they call the member's actuator surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Multiplier applied to a partitioned member's SLO to produce its
#: pinned tail latency (requests time out far beyond the SLO).
PARTITION_TAIL_SLO_MULT = 10.0

#: Actions resolved as engine-level state (masked physics columns).
CHAOS_STATE_ACTIONS = ("leaf_crash", "leaf_restart", "straggler",
                       "power_cap", "partition")

#: Actuator-surface actions the chaos schedule also accepts.
CHAOS_ACTUATOR_ACTIONS = ("enable_be", "disable_be", "set_be_cores",
                          "set_llc_split", "set_be_net_ceil")

CHAOS_EVENT_ACTIONS = CHAOS_STATE_ACTIONS + CHAOS_ACTUATOR_ACTIONS


@dataclass(frozen=True)
class ChaosEvent:
    """One timed fault, targeted at engine-local member indices.

    Args:
        at_s: simulated time the event fires (start of the first tick
            with ``time_s >= at_s``).
        action: one of :data:`CHAOS_EVENT_ACTIONS`.
        value: action parameter (derate fraction, TDP fraction,
            blackout seconds, or the actuator argument); None for
            valueless actions.
        members: tuple of member indices the event targets, or None
            for every member of the engine it is attached to.  Indices
            are *local* to the receiving engine — the fleet layer
            translates cluster-global leaf indices before dispatch.
    """

    at_s: float
    action: str
    value: Optional[float] = None
    members: Optional[Tuple[int, ...]] = None

    def validate(self) -> None:
        """Check the action name and basic parameter sanity."""
        if self.action not in CHAOS_EVENT_ACTIONS:
            raise ValueError(f"unknown chaos action {self.action!r}; "
                             f"choose from {', '.join(CHAOS_EVENT_ACTIONS)}")
        if self.at_s < 0:
            raise ValueError("chaos events cannot fire before t=0")
        needs_value = self.action not in ("leaf_crash", "leaf_restart",
                                          "enable_be", "disable_be")
        if needs_value and self.value is None:
            raise ValueError(f"chaos action {self.action!r} requires a "
                             f"value")

    def retarget(self, members: Optional[Tuple[int, ...]]) -> "ChaosEvent":
        """A copy of this event aimed at a different member set."""
        return ChaosEvent(at_s=self.at_s, action=self.action,
                          value=self.value, members=members)


def sort_events(events) -> Tuple[ChaosEvent, ...]:
    """Validate and order a schedule by ``(at_s, schedule position)``.

    The stable sort keeps same-timestamp events in schedule order,
    which is the tie-break every engine replays identically.
    """
    for event in events:
        event.validate()
    return tuple(sorted(events, key=lambda e: e.at_s))


def trace_chaos_event(sink, t_s: float, event: ChaosEvent,
                      members) -> None:
    """Record one fired event into a decision-trace sink.

    ``members`` are the *global* (fleet-wide) indices the event
    resolved against — one trace row per affected member, so the
    merged trace is invariant under any shard partition (each shard
    traces exactly the members it owns).  ``a`` carries the event
    value (NaN for valueless actions) and ``b`` the scheduled
    ``at_s``; ``t_s`` is the tick the event actually resolved on.
    """
    kind = "chaos_" + event.action
    value = None if event.value is None else float(event.value)
    sink.emit_block(float(t_s), np.asarray(members, dtype=np.int64),
                    "chaos", kind, a=value, b=float(event.at_s))
