"""Declarative scenario layer: compose colocation experiments from specs.

The paper's evaluation is a fixed grid of LC x BE colocations; this
subsystem generalizes it.  A :class:`ScenarioSpec` — written as a dict,
a JSON/YAML file, or in code — describes hardware overrides, any mix of
LC/BE members with per-member traces and seeds, controller selection
(Heracles, none, or a static baseline), mid-run injections, sweep
grids, and cluster runs; :func:`compile_scenario` lowers it onto the
scalar engine, the batched backend, or the parallel sweep runner.

Three entry points::

    from repro.scenarios import load_scenario, run_scenario, registry

    spec = load_scenario("my_experiment.yaml")   # file or dict
    result = run_scenario(spec)                  # compile + execute
    print(result.render())

    registry.names()                             # shipped scenarios
    run_scenario(registry.get("fig4"))           # the paper's Figure 4

Schema reference: ``docs/scenarios.md``.  CLI:
``python -m repro.cli scenario <name-or-file>``.
"""

from . import library  # noqa: F401  (registers the shipped scenarios)
from . import registry
from .compiler import (CompiledScenario, InjectionSchedule, MemberResult,
                       ScenarioResult, SweepGrid, compile_scenario,
                       run_scenario)
from .loader import load_scenario, loads_scenario, parse_simple_yaml
from .spec import (CONTROLLERS, ENGINES, INJECTION_ACTIONS,
                   CheckpointSpec, ClusterSpec, FleetSpec, InjectionSpec,
                   JobSpec, ScenarioError, ScenarioSpec, ScheduleSpec,
                   ServerSpec, ShardSpec, SpikeSpec, SweepSpec, TraceSpec,
                   WorkloadSpec)

__all__ = [
    "CONTROLLERS", "ENGINES", "INJECTION_ACTIONS",
    "CheckpointSpec", "ClusterSpec", "FleetSpec", "InjectionSpec",
    "JobSpec",
    "ScenarioError", "ScenarioSpec", "ScheduleSpec", "ServerSpec",
    "ShardSpec", "SpikeSpec", "SweepSpec", "TraceSpec", "WorkloadSpec",
    "CompiledScenario", "InjectionSchedule", "MemberResult",
    "ScenarioResult", "SweepGrid", "compile_scenario", "run_scenario",
    "load_scenario", "loads_scenario", "parse_simple_yaml",
    "registry",
]
