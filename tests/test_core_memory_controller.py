"""Tests for the core & memory subcontroller (Algorithm 2)."""

import pytest

from repro.core.config import HeraclesConfig
from repro.core.core_memory import CoreMemoryController
from repro.core.dram_model import profile_lc_dram_model
from repro.core.state import ControlState, GrowthPhase
from repro.hardware.counters import CounterBank
from repro.hardware.server import Server, TaskTickDemand
from repro.hardware.spec import default_machine_spec
from repro.sim.actuators import Actuators
from repro.workloads.latency_critical import make_lc_workload


class FakeBeThroughput:
    def __init__(self):
        self.value = 0.1

    def __call__(self):
        return self.value


@pytest.fixture
def rig():
    spec = default_machine_spec()
    server = Server(spec)
    actuators = Actuators(server)
    counters = CounterBank(server)
    state = ControlState()
    lc = make_lc_workload("websearch", spec)
    model = profile_lc_dram_model(lc)
    be_tput = FakeBeThroughput()
    controller = CoreMemoryController(
        HeraclesConfig(), state, actuators, counters, model,
        lc_task="websearch", be_task="be", be_throughput_fn=be_tput)
    return controller, state, actuators, server, be_tput


def drive_dram(server, be_gbps_socket0, lc_gbps=10.0):
    """Resolve the server with explicit DRAM traffic."""
    demands = [
        TaskTickDemand(task="websearch", cores_by_socket={0: 10, 1: 10},
                       activity=0.5,
                       uncached_dram_gbps_by_socket={0: lc_gbps / 2,
                                                     1: lc_gbps / 2}),
        TaskTickDemand(task="be", cores_by_socket={0: 4, 1: 4},
                       activity=0.5,
                       uncached_dram_gbps_by_socket={0: be_gbps_socket0,
                                                     1: 1.0}),
    ]
    server.resolve(demands)


class TestDramGuard:
    def test_limit_is_per_socket(self, rig):
        controller = rig[0]
        # 90% of one socket's 60 GB/s.
        assert controller.dram_limit_gbps == pytest.approx(54.0)

    def test_overage_removes_cores(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        drive_dram(server, be_gbps_socket0=58.0)
        controller.step(0.0)
        assert actuators.be_cores < 8

    def test_no_removal_under_limit(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        drive_dram(server, be_gbps_socket0=10.0)
        state.growth_allowed = False  # isolate the removal path
        controller.step(0.0)
        assert actuators.be_cores == 8

    def test_bandwidth_derivative_tracking(self, rig):
        controller, state, actuators, server, _ = rig
        drive_dram(server, be_gbps_socket0=10.0)
        controller.measure_dram_bw()
        drive_dram(server, be_gbps_socket0=20.0)
        controller.measure_dram_bw()
        assert controller._bw_derivative == pytest.approx(10.0)

    def test_be_bw_per_core_uses_total(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        actuators.set_be_cores(8)
        drive_dram(server, be_gbps_socket0=15.0)  # be total = 16
        assert controller.be_bw_per_core_gbps() == pytest.approx(2.0)

    def test_be_bw_per_core_no_cores(self, rig):
        controller = rig[0]
        assert controller.be_bw_per_core_gbps() == pytest.approx(1.0)


class TestGrowthGates:
    def test_no_growth_when_disallowed(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.growth_allowed = False
        drive_dram(server, be_gbps_socket0=1.0)
        before = actuators.be_cores
        controller.step(0.0)
        assert actuators.be_cores == before

    def test_no_growth_in_cooldown(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.5
        state.enter_cooldown(0.0, 100.0)
        drive_dram(server, be_gbps_socket0=1.0)
        state.phase = GrowthPhase.GROW_CORES
        before = actuators.be_cores
        controller.step(0.0)
        assert actuators.be_cores == before

    def test_grow_cores_with_slack(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.3
        state.phase = GrowthPhase.GROW_CORES
        drive_dram(server, be_gbps_socket0=1.0)
        before = actuators.be_cores
        controller.step(0.0)
        assert actuators.be_cores == before + 1

    def test_no_growth_with_thin_slack(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.12  # above no-growth but inside the guard band
        state.load = 0.3
        state.phase = GrowthPhase.GROW_CORES
        drive_dram(server, be_gbps_socket0=1.0)
        before = actuators.be_cores
        controller.step(0.0)
        assert actuators.be_cores == before

    def test_core_budget_tracks_load(self, rig):
        controller, state = rig[0], rig[1]
        state.load = 0.0
        high = controller.be_core_budget()
        state.load = 0.8
        low = controller.be_core_budget()
        assert high > low >= 0

    def test_budget_enforced_on_load_rise(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        actuators.set_be_cores(30)
        state.load = 0.7  # budget is now much smaller than 30
        drive_dram(server, be_gbps_socket0=1.0)
        controller.step(0.0)
        assert actuators.be_cores <= controller.be_core_budget()

    def test_dram_prediction_switches_to_llc_phase(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        actuators.set_be_cores(4)
        state.slack = 0.6
        state.load = 0.2
        state.phase = GrowthPhase.GROW_CORES
        # BE socket-0 traffic near the limit: prediction must refuse.
        drive_dram(server, be_gbps_socket0=52.0)
        controller.step(0.0)
        # Removed by measured overage or switched phase — never grown.
        assert actuators.be_cores <= 4
        assert state.phase in (GrowthPhase.GROW_LLC, GrowthPhase.GROW_CORES)


class TestLlcDescent:
    def test_llc_grows_under_good_conditions(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.2
        assert state.phase is GrowthPhase.GROW_LLC
        drive_dram(server, be_gbps_socket0=1.0)
        before = actuators.be_llc_ways
        controller.step(0.0)
        assert actuators.be_llc_ways == before + 1
        assert controller._pending is not None

    def test_rollback_when_bandwidth_rises(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.2
        drive_dram(server, be_gbps_socket0=1.0)
        controller.step(0.0)
        before_ways = controller._pending.previous_ways
        # Next period: bandwidth went UP -> rollback, switch phase.
        drive_dram(server, be_gbps_socket0=20.0)
        controller.step(2.0)
        assert actuators.be_llc_ways == before_ways
        assert state.phase is GrowthPhase.GROW_CORES

    def test_no_benefit_stops_llc_growth(self, rig):
        controller, state, actuators, server, be_tput = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.2
        drive_dram(server, be_gbps_socket0=10.0)
        controller.step(0.0)
        # Bandwidth falls (good) but BE throughput does not improve.
        be_tput.value = 0.1
        drive_dram(server, be_gbps_socket0=5.0)
        controller.step(2.0)
        assert state.phase is GrowthPhase.GROW_CORES

    def test_benefit_keeps_llc_phase(self, rig):
        controller, state, actuators, server, be_tput = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.2
        drive_dram(server, be_gbps_socket0=10.0)
        controller.step(0.0)
        be_tput.value = 0.3  # clear improvement
        drive_dram(server, be_gbps_socket0=5.0)
        controller.step(2.0)
        assert state.phase is GrowthPhase.GROW_LLC

    def test_period_respected(self, rig):
        controller, state, actuators, server, _ = rig
        actuators.enable_be()
        state.slack = 0.6
        state.load = 0.2
        drive_dram(server, be_gbps_socket0=1.0)
        controller.step(0.0)
        ways_after_first = actuators.be_llc_ways
        controller.step(0.5)  # not due yet
        assert actuators.be_llc_ways == ways_after_first


class TestSlackRefresh:
    def test_current_slack_uses_monitor(self, rig):
        controller, state, actuators, server, _ = rig
        from repro.sim.monitors import LatencyMonitor
        monitor = LatencyMonitor()
        monitor.record(0.0, 20.0, 0.5)
        controller.monitor = monitor
        controller.slo_target_ms = 25.0
        controller._now_s = 0.0
        assert controller.current_slack() == pytest.approx(0.2)

    def test_current_slack_falls_back_to_state(self, rig):
        controller, state = rig[0], rig[1]
        state.slack = 0.33
        assert controller.current_slack() == pytest.approx(0.33)
