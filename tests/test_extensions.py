"""Tests for the paper's anticipated extensions: per-core DRAM
accounting (§4.2) and the centralized cluster coordinator (§5.3)."""

import pytest

import repro
from repro.cluster.coordinator import (ClusterCoordinator,
                                       CoordinatedWebsearchCluster)
from repro.core.hw_dram import (HardwareCountedCoreMemoryController,
                                attach_hardware_counted_heracles)
from repro.workloads.traces import DiurnalTrace


class TestHardwareDramAccounting:
    def test_no_offline_model_needed(self):
        sim = repro.build_colocation("websearch", "streetview", load=0.45,
                                     seed=3)
        controller = attach_hardware_counted_heracles(sim)
        assert isinstance(controller.core_memory,
                          HardwareCountedCoreMemoryController)
        history = sim.run(700)
        assert history.worst_window_slo(skip_s=240) <= 1.0
        assert history.mean_emu(skip_s=240) > 0.55

    def test_counter_read_includes_margin(self):
        sim = repro.build_colocation("websearch", "brain", load=0.4, seed=1)
        controller = attach_hardware_counted_heracles(sim)
        sim.tick()
        cm = controller.core_memory
        raw = sim.counters.dram_bw_of("websearch") / 2
        assert cm.lc_bw_model_gbps() == pytest.approx(raw * 1.10)

    def test_margin_validation(self):
        sim = repro.build_colocation("websearch", "brain", load=0.4)
        from repro.core.config import HeraclesConfig
        from repro.core.state import ControlState
        with pytest.raises(ValueError):
            HardwareCountedCoreMemoryController(
                HeraclesConfig(), ControlState(), sim.actuators,
                sim.counters, lc_task="websearch", be_task="brain",
                be_throughput_fn=lambda: 0.0, measurement_margin=0.5)

    def test_requires_be(self):
        from repro.sim.engine import ColocationSim
        from repro.workloads.latency_critical import make_lc_workload
        from repro.workloads.traces import ConstantLoad
        sim = ColocationSim(lc=make_lc_workload("websearch"),
                            trace=ConstantLoad(0.4))
        with pytest.raises(ValueError):
            attach_hardware_counted_heracles(sim)

    def test_safe_on_dram_heavy_colocation(self):
        # The whole point of the DRAM guard: stream-DRAM with counters.
        sim = repro.build_colocation("websearch", "stream-DRAM", load=0.4,
                                     seed=3)
        attach_hardware_counted_heracles(sim)
        history = sim.run(700)
        assert history.worst_window_slo(skip_s=240) <= 1.0
        assert history.column("dram_utilization").max() <= 0.99


class TestClusterCoordinator:
    def test_target_raises_with_root_slack(self):
        c = ClusterCoordinator(root_slo_ms=20.0, base_leaf_slo_ms=17.0)
        target = c.step_targets(0.0, root_latency_ms=10.0)  # big slack
        assert target > 17.0

    def test_target_lowers_when_slack_thin(self):
        c = ClusterCoordinator(root_slo_ms=20.0, base_leaf_slo_ms=17.0)
        c.step_targets(0.0, root_latency_ms=19.5)
        assert c.leaf_target_ms < 17.0

    def test_clamped_to_band(self):
        c = ClusterCoordinator(root_slo_ms=20.0, base_leaf_slo_ms=17.0,
                               period_s=0.5)
        for t in range(60):
            c.step_targets(float(t), root_latency_ms=2.0)
        assert c.scale == pytest.approx(c.max_scale)
        for t in range(60, 160):
            c.step_targets(float(t), root_latency_ms=19.9)
        assert c.scale == pytest.approx(c.min_scale)

    def test_period_respected(self):
        c = ClusterCoordinator(root_slo_ms=20.0, base_leaf_slo_ms=17.0,
                               period_s=30.0)
        c.step_targets(0.0, 10.0)
        scale = c.scale
        c.step_targets(10.0, 10.0)  # not due
        assert c.scale == scale

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterCoordinator(root_slo_ms=0.0, base_leaf_slo_ms=17.0)
        with pytest.raises(ValueError):
            ClusterCoordinator(20.0, 17.0, raise_slack=0.1, lower_slack=0.2)
        with pytest.raises(ValueError):
            ClusterCoordinator(20.0, 17.0, min_scale=1.2)

    def test_coordinated_cluster_runs_safely(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=2400,
                             noise_sigma=0.0, seed=5)
        coordinated = CoordinatedWebsearchCluster(leaves=4, trace=trace,
                                                  seed=5)
        history = coordinated.run(2400)
        assert history.max_root_slo_fraction(skip_s=300) <= 1.0
        assert history.mean_emu(skip_s=300) > 0.6
        # The coordinator actually moved the targets at some point.
        assert coordinated.coordinator.scale != 1.0


class TestCli:
    def test_parser_choices(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["tco"])
        assert args.experiment == "tco"

    def test_tco_runs(self, capsys):
        from repro.cli import main
        assert main(["tco"]) == 0
        out = capsys.readouterr().out
        assert "Throughput/TCO" in out

    def test_quickstart_runs(self, capsys):
        from repro.cli import main
        assert main(["quickstart"]) == 0
        assert "EMU" in capsys.readouterr().out

    def test_rejects_unknown(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_jobs_warns_for_serial_experiments(self, capsys):
        # fig1/fig3/fig7/tco/quickstart run a fixed serial pipeline;
        # --jobs must say so instead of being silently ignored.
        from repro.cli import main
        with pytest.warns(UserWarning, match="--jobs has no effect"):
            assert main(["tco", "--jobs", "4"]) == 0
        capsys.readouterr()

    def test_jobs_accepted_for_sweeps_without_warning(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["fig4", "--jobs", "2"])
        assert args.jobs == 2
        args = build_parser().parse_args(["scenario", "fig4", "-j", "3"])
        assert args.jobs == 3

    def test_quickstart_seed_passthrough(self, capsys):
        from repro.cli import main
        assert main(["quickstart", "--seed", "7"]) == 0
        out_a = capsys.readouterr().out
        assert main(["quickstart", "--seed", "7"]) == 0
        out_b = capsys.readouterr().out
        assert out_a == out_b  # deterministic for a pinned seed
        assert "EMU" in out_a

    def test_jobs_rejects_nonpositive(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="jobs"):
            main(["fig4", "--jobs", "0"])
