"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hardware.cache import CacheDemand, CatController, resolve_occupancy
from repro.hardware.memory import MemoryController, MemoryDemand
from repro.hardware.network import EgressLink, FlowDemand
from repro.hardware.power import CorePowerRequest, SocketPowerModel
from repro.hardware.spec import SocketSpec
from repro.perf.queueing import QueueModel, erlang_c
from repro.perf.saturation import knee_penalty

positive_bw = st.floats(min_value=0.0, max_value=500.0,
                        allow_nan=False, allow_infinity=False)


class TestCacheProperties:
    @given(st.lists(
        st.tuples(positive_bw, positive_bw, positive_bw,
                  st.floats(0, 1), st.floats(0, 1)),
        min_size=1, max_size=6),
        st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_conserved_and_bounded(self, raw, partition):
        demands = [CacheDemand(task=f"t{i}", hot_mb=h, bulk_mb=b,
                               access_gbps=a, hot_access_fraction=f,
                               bulk_reuse=r)
                   for i, (h, b, a, f, r) in enumerate(raw)]
        shares = resolve_occupancy(partition, demands)
        total = sum(s.occupancy_mb for s in shares)
        assert total <= partition + 1e-6
        for share, demand in zip(shares, demands):
            assert -1e-9 <= share.occupancy_mb <= demand.footprint_mb + 1e-6
            assert 0.0 <= share.hit_fraction <= 1.0
            assert 0.0 <= share.hot_coverage <= 1.0
            assert 0.0 <= share.bulk_coverage <= 1.0
            assert share.miss_gbps <= demand.access_gbps + 1e-9

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_cat_ways_never_oversubscribed(self, ways):
        cat = CatController(45.0, ways)
        cat.set_partition("lc", ways // 2)
        cat.set_partition("be", ways - ways // 2)
        assert cat.unallocated_ways() == 0
        assert not cat.grow("lc")


class TestMemoryProperties:
    @given(st.lists(positive_bw, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_fair_scaling(self, demands_gbps):
        controller = MemoryController(60.0)
        demands = [MemoryDemand(f"t{i}", d)
                   for i, d in enumerate(demands_gbps)]
        res = controller.resolve(demands)
        assert res.total_achieved_gbps <= 60.0 + 1e-6
        assert res.total_achieved_gbps <= res.total_demand_gbps + 1e-6
        for grant, demand in zip(res.grants, demands):
            assert grant.achieved_gbps <= demand.demand_gbps + 1e-9
            assert grant.access_delay_factor >= 1.0

    @given(st.floats(min_value=0.0, max_value=3.0),
           st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_monotone_in_demand(self, a, b):
        assume(a <= b)
        controller = MemoryController(60.0)
        da = controller.delay_factor(min(1.0, a), a * 60.0)
        db = controller.delay_factor(min(1.0, b), b * 60.0)
        assert db >= da - 1e-9


class TestNetworkProperties:
    @given(st.lists(
        st.tuples(positive_bw, st.integers(1, 1000),
                  st.one_of(st.none(), st.floats(0, 12))),
        min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_ceilings(self, raw):
        link = EgressLink(10.0)
        demands = [FlowDemand(f"t{i}", d, flows=f, ceil_gbps=c)
                   for i, (d, f, c) in enumerate(raw)]
        res = link.resolve(demands)
        assert res.total_achieved_gbps <= 10.0 + 1e-6
        for grant, demand in zip(res.grants, demands):
            assert grant.achieved_gbps <= grant.demand_gbps + 1e-9
            if demand.ceil_gbps is not None:
                assert grant.achieved_gbps <= demand.ceil_gbps + 1e-9

    @given(st.floats(min_value=0.01, max_value=9.0))
    @settings(max_examples=40, deadline=None)
    def test_single_flow_gets_whole_link(self, demand):
        link = EgressLink(10.0)
        res = link.resolve([FlowDemand("only", demand)])
        assert res.grant_for("only").satisfaction == pytest.approx(1.0)


class TestPowerProperties:
    @given(st.integers(0, 18), st.floats(0.0, 2.5))
    @settings(max_examples=60, deadline=None)
    def test_power_never_exceeds_tdp_when_throttled(self, cores, activity):
        model = SocketPowerModel(SocketSpec())
        res = model.resolve([CorePowerRequest("t", cores, activity)])
        spec = SocketSpec()
        assert res.socket_power_watts <= spec.tdp_watts + 0.5
        for grant in res.grants:
            assert (spec.turbo.min_ghz - 1e-9 <= grant.freq_ghz
                    <= spec.turbo.max_turbo_ghz + 1e-9)

    @given(st.floats(0.1, 2.5), st.floats(0.1, 2.5))
    @settings(max_examples=40, deadline=None)
    def test_more_activity_never_more_frequency(self, a, b):
        assume(a < b)
        model = SocketPowerModel(SocketSpec())
        fa = model.resolve([CorePowerRequest("t", 18, min(a, 2.5))])
        fb = model.resolve([CorePowerRequest("t", 18, min(b, 2.5))])
        assert fb.freq_of("t") <= fa.freq_of("t") + 1e-9


class TestQueueingProperties:
    @given(st.integers(1, 64), st.floats(0.0, 60.0))
    @settings(max_examples=60, deadline=None)
    def test_erlang_c_is_probability(self, servers, offered):
        value = erlang_c(servers, offered)
        assert 0.0 <= value <= 1.0

    @given(st.integers(1, 48), st.floats(0.1, 20.0),
           st.one_of(st.none(), st.integers(1, 12)),
           st.lists(st.floats(0.0, 3.0), min_size=2, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_tail_monotone_in_load(self, servers, service, pool, rhos):
        model = QueueModel(servers=servers, service_ms=service,
                           pool_size=pool)
        sat = model.saturation_qps()
        qps = sorted(r * sat for r in rhos)
        tails = [model.tail_latency_ms(q) for q in qps]
        for a, b in zip(tails, tails[1:]):
            assert b >= a - 1e-9
        assert all(math.isfinite(t) and t > 0 for t in tails)

    @given(st.floats(0.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_knee_penalty_at_least_one(self, util):
        assert knee_penalty(util) >= 1.0
