"""Golden regression tests for reported aggregate metrics.

The paper-facing numbers — worst 60-second windowed SLO fraction, mean
EMU, max root SLO fraction — are aggregates over whole simulated runs.
A refactor that subtly shifts the physics or the controller trajectory
can move them without failing any behavioural test, so these tests pin
small fixed-seed runs to their exact values (the simulator is fully
deterministic for a given seed).

If a change *intentionally* alters the model, update the constants and
say so in the commit; if you did not intend to change reported figures,
a failure here means the refactor is not equivalence-preserving.

Tolerance note: values are asserted to 1e-9 relative — loose enough to
survive last-ulp differences in libm across platforms, tight enough
that any real modelling change trips it.
"""

import pytest

from repro import build_colocation
from repro.cluster.cluster import WebsearchCluster
from repro.core.controller import HeraclesController
from repro.workloads.traces import DiurnalTrace

RTOL = 1e-9


class TestColocationGoldens:
    """websearch + brain at 55% load, seed 3, 300 s (managed)."""

    @pytest.fixture(scope="class")
    def history(self):
        sim = build_colocation("websearch", "brain", load=0.55, seed=3)
        HeraclesController.for_sim(sim)
        return sim.run(300)

    def test_worst_window_slo(self, history):
        assert history.worst_window_slo(skip_s=120.0) == pytest.approx(
            0.68670384912247, rel=RTOL)

    def test_mean_emu(self, history):
        assert history.mean_emu(skip_s=120.0) == pytest.approx(
            0.9016822308882855, rel=RTOL)

    def test_max_slo_fraction(self, history):
        assert history.max_slo_fraction(skip_s=120.0) == pytest.approx(
            0.7490958052996884, rel=RTOL)

    def test_mean_dram_bw(self, history):
        assert history.mean("dram_bw_gbps", skip_s=120.0) == pytest.approx(
            58.8380539772727, rel=RTOL)


class TestClusterGoldens:
    """4-leaf websearch cluster, 20-minute diurnal trace, seed 3."""

    @pytest.fixture(scope="class")
    def cluster_run(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1200,
                             noise_sigma=0.02, seed=3)
        cluster = WebsearchCluster(leaves=4, trace=trace, seed=3)
        history = cluster.run(600)
        return cluster, history

    def test_record_count(self, cluster_run):
        _, history = cluster_run
        assert len(history.records) == 20  # one per 30 s over 600 s

    def test_mean_emu(self, cluster_run):
        _, history = cluster_run
        assert history.mean_emu() == pytest.approx(
            0.7209578512992155, rel=RTOL)

    def test_min_emu(self, cluster_run):
        _, history = cluster_run
        assert history.min_emu() == pytest.approx(0.2, rel=RTOL)

    def test_max_root_slo_fraction(self, cluster_run):
        _, history = cluster_run
        assert history.max_root_slo_fraction() == pytest.approx(
            0.9294770982976907, rel=RTOL)

    def test_root_slo_ms(self, cluster_run):
        cluster, _ = cluster_run
        assert cluster.root_slo_ms == pytest.approx(
            15.406552528095565, rel=RTOL)

    def test_engines_agree(self, cluster_run):
        """The scalar reference cluster reproduces the same goldens."""
        _, batch_history = cluster_run
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1200,
                             noise_sigma=0.02, seed=3)
        scalar = WebsearchCluster(leaves=4, trace=trace, seed=3,
                                  engine="scalar")
        scalar_history = scalar.run(600)
        assert scalar_history.mean_emu() == pytest.approx(
            batch_history.mean_emu(), rel=1e-12)
        assert scalar_history.max_root_slo_fraction() == pytest.approx(
            batch_history.max_root_slo_fraction(), rel=1e-12)


class TestChaos1kGoldens:
    """chaos-1k at 120x compression, 1% leaves (10 leaves, 360 s).

    Pins the fault-injection showcase scenario: crash/restart waves on
    web-core, a straggler through web-himem's peak, a kv-edge power
    cap, and an ml-batch root partition.  The values bake in every
    chaos code path, so a drift here means the chaos engine moved.
    """

    @staticmethod
    def compressed_spec():
        from repro.scenarios.library import chaos_1k_scenario
        return chaos_1k_scenario(time_compression=120.0,
                                 leaves_scale=0.01)

    @pytest.fixture(scope="class")
    def summary(self):
        from repro.scenarios import run_scenario
        spec = self.compressed_spec()
        result = run_scenario(spec, processes=1)
        return result.fleet.summary(skip_s=spec.warmup_s)

    def test_fleet_emu(self, summary):
        assert summary["fleet_emu"] == pytest.approx(
            0.5430787489564083, rel=RTOL)
        assert summary["min_fleet_emu"] == pytest.approx(
            0.27516806888290857, rel=RTOL)

    def test_weighted_root_latency(self, summary):
        assert summary["weighted_root_latency_ms"] == pytest.approx(
            72.40651867416112, rel=RTOL)

    def test_crashed_cluster_stats(self, summary):
        web = summary["clusters"]["web-core"]
        assert web["mean_emu"] == pytest.approx(
            0.6188655681649528, rel=RTOL)
        assert web["max_root_slo_fraction"] == pytest.approx(
            0.9341017267791231, rel=RTOL)

    def test_partitioned_cluster_stats(self, summary):
        ml = summary["clusters"]["ml-batch"]
        assert ml["max_root_slo_fraction"] == pytest.approx(
            9.25579281906647, rel=RTOL)
        assert ml["mean_emu"] == pytest.approx(
            0.4417925233619397, rel=RTOL)

    def test_straggler_blows_the_leaf_slo(self, summary):
        # A 60% frequency derate through the diurnal peak is not
        # survivable at that SLO — the pin documents the blast radius.
        himem = summary["clusters"]["web-himem"]
        assert himem["max_root_slo_fraction"] == pytest.approx(
            57.51172052619947, rel=RTOL)

    def test_mega_engine_agrees(self, summary):
        import dataclasses

        from repro.scenarios import run_scenario
        spec = self.compressed_spec()
        mega = dataclasses.replace(
            spec, fleet=dataclasses.replace(spec.fleet, engine="mega"))
        result = run_scenario(mega, processes=1)
        assert result.fleet.summary(skip_s=spec.warmup_s) == summary


class TestWorstWindowDtCorrectness:
    """worst_window_slo derives its width from the actual tick size."""

    def test_non_unit_dt_window(self):
        sim = build_colocation("websearch", "brain", load=0.4, seed=1)
        sim.run(120, dt_s=0.5)  # 240 ticks of 0.5 s
        history = sim.history
        assert history.dt_s() == pytest.approx(0.5)
        # A 60 s window over 0.5 s ticks must span 120 samples, not 60.
        import numpy as np
        series = history.column("slo_fraction")
        csum = np.cumsum(np.insert(series, 0, 0.0))
        expected = ((csum[120:] - csum[:-120]) / 120).max()
        assert history.worst_window_slo(window_s=60.0) == pytest.approx(
            float(expected), rel=1e-12)

    def test_explicit_dt_override(self):
        sim = build_colocation("websearch", "brain", load=0.4, seed=1)
        sim.run(60)
        h = sim.history
        assert h.worst_window_slo(window_s=30.0, dt_s=1.0) == pytest.approx(
            h.worst_window_slo(window_s=30.0), rel=1e-12)
        with pytest.raises(ValueError):
            h.worst_window_slo(dt_s=-1.0)

    def test_cluster_record_cadence_non_unit_dt(self):
        trace = DiurnalTrace(low=0.2, high=0.9, period_s=1200,
                             noise_sigma=0.0, seed=1)
        cluster = WebsearchCluster(leaves=2, trace=trace, seed=1,
                                   managed=False)
        cluster.run(120, dt_s=2.0)  # 60 ticks; record every 15 ticks
        assert len(cluster.history.records) == 4
        times = [r.t_s for r in cluster.history.records]
        assert times == [0.0, 30.0, 60.0, 90.0]
