"""Bench for DRAM bandwidth isolation (the paper's §1/§6 ask).

"We establish the need for hardware mechanisms to monitor and isolate
DRAM bandwidth, which can improve Heracles' accuracy and eliminate the
need for offline information."  This bench quantifies the claim: with
MBA-style request-rate throttles, Heracles trades per-core bandwidth
for extra BE cores and recovers the EMU that core removal leaves on the
table for DRAM-bound BE tasks — at equal safety.
"""

from conftest import regenerate

import repro
from repro.core import HeraclesController
from repro.core.mba import attach_mba_heracles


def test_bench_mba_bandwidth_isolation(benchmark):
    def sweep():
        out = {}
        for be in ("streetview", "stream-DRAM", "brain"):
            for load in (0.25, 0.50):
                base = repro.build_colocation("websearch", be, load=load,
                                              seed=3)
                HeraclesController.for_sim(base)
                bh = base.run(700)
                mba = repro.build_colocation("websearch", be, load=load,
                                             seed=3)
                attach_mba_heracles(mba)
                mh = mba.run(700)
                out[(be, load)] = {
                    "base": (bh.worst_window_slo(skip_s=240),
                             bh.mean_emu(skip_s=240)),
                    "mba": (mh.worst_window_slo(skip_s=240),
                            mh.mean_emu(skip_s=240)),
                }
        return out

    results = regenerate(benchmark, sweep)
    print()
    for (be, load), arms in results.items():
        b_slo, b_emu = arms["base"]
        m_slo, m_emu = arms["mba"]
        print(f"{be:<12} @{load:.0%}: core-removal EMU {b_emu:.2f} "
              f"(tail {b_slo:.0%}) -> MBA EMU {m_emu:.2f} "
              f"(tail {m_slo:.0%})")
    # Safety is preserved everywhere.
    for arms in results.values():
        assert arms["base"][0] <= 1.0
        assert arms["mba"][0] <= 1.0
    # The DRAM-bound tasks gain materially; nobody loses.
    for (be, load), arms in results.items():
        assert arms["mba"][1] >= arms["base"][1] - 0.03
    assert (results[("stream-DRAM", 0.25)]["mba"][1]
            > results[("stream-DRAM", 0.25)]["base"][1] + 0.08)
