"""Hardware specifications for the simulated server.

The paper evaluates Heracles on production Google servers: dual-socket
Intel Xeons (Haswell) with a high core count, a nominal frequency of
2.3 GHz, 2.5 MB of LLC per core, and hardware support for way-partitioning
of the LLC (Intel CAT).  :class:`MachineSpec` captures everything the
simulation needs to know about such a machine; the default constructed by
:func:`default_machine_spec` mirrors the paper's hardware.

All values use explicit engineering units in their names (``_ghz``,
``_gbps``, ``_mb``, ``_watts``) so there is never ambiguity about scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class TurboSpec:
    """Frequency range of a socket, including dynamic overclocking.

    Modern chips opportunistically raise frequency above nominal when there
    is power headroom (Intel Turbo Boost).  The achievable turbo frequency
    falls as more cores are active; we model that with a linear droop from
    ``max_turbo_ghz`` (one active core) down to ``all_core_turbo_ghz``
    (all cores active).
    """

    nominal_ghz: float = 2.3
    max_turbo_ghz: float = 3.1
    all_core_turbo_ghz: float = 2.7
    min_ghz: float = 1.2
    step_ghz: float = 0.1  # per-core DVFS granularity (100 MHz steps, §4.1)

    def turbo_ceiling_ghz(self, active_cores: int, total_cores: int) -> float:
        """Maximum frequency permitted by the turbo tables.

        This is the electrical ceiling only; the power model may throttle
        below it when the socket nears TDP.
        """
        if active_cores <= 0:
            return self.max_turbo_ghz
        if total_cores <= 1:
            return self.max_turbo_ghz
        fraction = (active_cores - 1) / (total_cores - 1)
        span = self.max_turbo_ghz - self.all_core_turbo_ghz
        return self.max_turbo_ghz - span * min(1.0, max(0.0, fraction))

    def clamp_ghz(self, freq_ghz: float) -> float:
        """Clamp a frequency request to the valid DVFS range and step."""
        clamped = min(self.max_turbo_ghz, max(self.min_ghz, freq_ghz))
        steps = round(clamped / self.step_ghz)
        return round(steps * self.step_ghz, 10)


@dataclass(frozen=True)
class SocketSpec:
    """Static description of a single CPU socket and its local resources."""

    cores: int = 18
    threads_per_core: int = 2
    turbo: TurboSpec = dataclasses.field(default_factory=TurboSpec)
    llc_mb: float = 45.0  # 2.5 MB per core x 18 cores, matching the paper
    llc_ways: int = 20
    dram_bw_gbps: float = 60.0  # peak streaming bandwidth of local channels
    tdp_watts: float = 120.0
    idle_watts: float = 18.0  # uncore + package idle floor
    # Dynamic power coefficient: watts per core at nominal frequency with
    # activity factor 1.0.  Power scales ~ activity * f^3 / f_nominal^3.
    core_dynamic_watts: float = 5.2

    @property
    def hyperthreads(self) -> int:
        return self.cores * self.threads_per_core


@dataclass(frozen=True)
class NicSpec:
    """Network interface description."""

    link_gbps: float = 10.0


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of one server."""

    sockets: int = 2
    socket: SocketSpec = dataclasses.field(default_factory=SocketSpec)
    nic: NicSpec = dataclasses.field(default_factory=NicSpec)

    @property
    def total_cores(self) -> int:
        return self.sockets * self.socket.cores

    @property
    def total_threads(self) -> int:
        return self.sockets * self.socket.hyperthreads

    @property
    def total_llc_mb(self) -> float:
        return self.sockets * self.socket.llc_mb

    @property
    def total_dram_bw_gbps(self) -> float:
        return self.sockets * self.socket.dram_bw_gbps

    @property
    def total_tdp_watts(self) -> float:
        return self.sockets * self.socket.tdp_watts

    def validate(self) -> None:
        """Raise :class:`ValueError` if the specification is inconsistent."""
        if self.sockets < 1:
            raise ValueError("a machine needs at least one socket")
        s = self.socket
        if s.cores < 1:
            raise ValueError("a socket needs at least one core")
        if s.threads_per_core < 1:
            raise ValueError("threads_per_core must be >= 1")
        if s.llc_ways < 2:
            raise ValueError("LLC must have at least 2 ways to partition")
        if s.llc_mb <= 0 or s.dram_bw_gbps <= 0:
            raise ValueError("LLC size and DRAM bandwidth must be positive")
        if s.tdp_watts <= s.idle_watts:
            raise ValueError("TDP must exceed idle power")
        t = s.turbo
        if not (t.min_ghz <= t.nominal_ghz <= t.all_core_turbo_ghz
                <= t.max_turbo_ghz):
            raise ValueError("turbo frequencies must be ordered "
                             "min <= nominal <= all-core <= max")
        if self.nic.link_gbps <= 0:
            raise ValueError("link rate must be positive")


def default_machine_spec() -> MachineSpec:
    """The dual-socket Haswell-class server used throughout the paper."""
    spec = MachineSpec()
    spec.validate()
    return spec
