"""OS-isolation-only colocation baseline.

The configuration Figure 1's ``brain`` rows measure: the LC service and
the BE task run in separate Linux containers, the BE task gets very few
CFS shares, and *no* other isolation mechanism is used — no cpuset
pinning, no CAT, no DVFS control, no traffic shaping.  Both workloads
may land on any core, or even the same HyperThread.

This module wraps that configuration as a reusable evaluation:
:func:`os_isolation_sweep` produces the tail-latency-vs-load row that
demonstrates why Heracles exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..experiments.common import characterization_cell
from ..hardware.spec import MachineSpec, default_machine_spec
from ..oslayer.scheduler import CfsModelParams, CfsSharedCoreModel
from ..workloads.antagonists import AntagonistSpec, Placement
from ..workloads.best_effort import BE_PROFILES
from ..workloads.latency_critical import (LatencyCriticalWorkload,
                                          make_lc_workload)


@dataclass
class OsIsolationPoint:
    """One load point of the OS-isolation baseline."""

    load: float
    slo_fraction: float
    be_throughput: float


def os_isolation_sweep(lc_name: str,
                       be_name: str = "brain",
                       loads: Optional[List[float]] = None,
                       spec: Optional[MachineSpec] = None,
                       lc_share: float = 0.98
                       ) -> List[OsIsolationPoint]:
    """Tail latency and BE throughput under CFS-shares-only isolation."""
    spec = spec or default_machine_spec()
    lc = make_lc_workload(lc_name, spec)
    if be_name not in BE_PROFILES:
        raise KeyError(f"unknown BE workload {be_name!r}")
    antagonist = AntagonistSpec(label=be_name,
                                profile=BE_PROFILES[be_name],
                                placement=Placement.SHARED_CORES)
    loads = loads or [round(0.05 * i, 2) for i in range(1, 20)]
    cfs = CfsSharedCoreModel()
    points = []
    for load in loads:
        result = characterization_cell(lc, antagonist, load, spec)
        lc_busy = lc.qps_at(load) * lc.base_service_ms / 1000.0
        be_share = cfs.throughput_share(
            lc_cpu_demand=lc_busy,
            be_cpu_demand=float(spec.total_cores),
            cores=spec.total_cores,
            lc_share=lc_share)
        points.append(OsIsolationPoint(
            load=load,
            slo_fraction=result.slo_fraction,
            be_throughput=be_share,
        ))
    return points


def violates_everywhere(points: List[OsIsolationPoint],
                        threshold: float = 1.0) -> bool:
    """True when every load point breaks the SLO — the paper's verdict
    on OS-only isolation for all three LC workloads."""
    if not points:
        raise ValueError("need at least one point")
    return all(p.slo_fraction > threshold for p in points)
