"""Effective Machine Utilization (EMU).

§5.1: "we compute the throughput rate of the batch workload with
Heracles and normalize it to the throughput of the batch workload
running alone on a single server.  We then define the Effective Machine
Utilization (EMU) = LC Throughput + BE Throughput.  Note that Effective
Machine Utilization can be above 100% due to better binpacking of
shared resources."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


def effective_machine_utilization(lc_throughput: float,
                                  be_throughput: float) -> float:
    """EMU for one server at one instant.

    Args:
        lc_throughput: LC load as a fraction of the server's peak.
        be_throughput: BE progress normalized to the BE task alone on
            one server.
    """
    if lc_throughput < 0 or be_throughput < 0:
        raise ValueError("throughputs must be non-negative")
    return lc_throughput + be_throughput


@dataclass
class EmuSummary:
    """Aggregate EMU statistics over a run or a cluster."""

    mean: float
    minimum: float
    maximum: float

    @classmethod
    def from_series(cls, values: Sequence[float]) -> "EmuSummary":
        if not values:
            raise ValueError("need at least one EMU sample")
        values = list(values)
        return cls(mean=sum(values) / len(values),
                   minimum=min(values),
                   maximum=max(values))


def cluster_emu(per_leaf_emu: Iterable[float]) -> float:
    """Cluster-level EMU: the average across leaves (each leaf is one
    server; the cluster's effective utilization is the mean)."""
    values = list(per_leaf_emu)
    if not values:
        raise ValueError("need at least one leaf")
    return sum(values) / len(values)
