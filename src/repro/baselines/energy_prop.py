"""Energy-proportionality baseline controller (PEGASUS-like).

§5.3 compares Heracles against "a controller that focuses only on
improving energy-proportionality" [47] — one that scales CPU power with
load instead of filling idle capacity with BE work.  Its benefit is a
smaller power bill at the *same* throughput, which the TCO model shows
is worth a few percent at best; Heracles' benefit is more throughput on
the same (mostly fixed-cost) infrastructure.

For completeness this module also provides a simulation-level
controller that applies DVFS to the LC cores according to load, so the
power draw of the energy-proportional alternative can be measured in
the same harness (the Fig. 6 power series and the ablation benches).
"""

from __future__ import annotations

from typing import Optional

from ..analysis.tco import TcoModel
from ..hardware.counters import CounterBank
from ..sim.actuators import Actuators
from ..sim.monitors import LatencyMonitor


class EnergyProportionalController:
    """Iso-latency DVFS on the LC cores, no colocation (PEGASUS-like).

    Polls latency; when slack is large, lowers the whole machine's
    frequency cap to save power; raises it as slack shrinks.  Never
    enables BE tasks.
    """

    def __init__(self, actuators: Actuators, monitor: LatencyMonitor,
                 slo_target_ms: float,
                 poll_period_s: float = 15.0,
                 lower_slack: float = 0.30,
                 raise_slack: float = 0.10):
        if slo_target_ms <= 0:
            raise ValueError("SLO target must be positive")
        if not 0.0 <= raise_slack < lower_slack <= 1.0:
            raise ValueError("need raise_slack < lower_slack")
        self.actuators = actuators
        self.monitor = monitor
        self.slo_target_ms = slo_target_ms
        self.poll_period_s = poll_period_s
        self.lower_slack = lower_slack
        self.raise_slack = raise_slack
        self._last_poll_s: Optional[float] = None
        self._lc_cap_ghz: Optional[float] = None
        self.actuators.disable_be()

    @property
    def lc_cap_ghz(self) -> Optional[float]:
        return self._lc_cap_ghz

    def step(self, now_s: float) -> None:
        if (self._last_poll_s is not None
                and now_s - self._last_poll_s < self.poll_period_s):
            return
        self._last_poll_s = now_s
        latency = self.monitor.poll_latency_ms(now_s)
        if latency is None:
            return
        slack = (self.slo_target_ms - latency) / self.slo_target_ms
        turbo = self.actuators.spec.socket.turbo
        if slack > self.lower_slack:
            current = self._lc_cap_ghz or turbo.max_turbo_ghz
            self._lc_cap_ghz = turbo.clamp_ghz(current - turbo.step_ghz)
        elif slack < self.raise_slack and self._lc_cap_ghz is not None:
            raised = self._lc_cap_ghz + 2 * turbo.step_ghz
            if raised >= turbo.max_turbo_ghz - 1e-9:
                self._lc_cap_ghz = None
            else:
                self._lc_cap_ghz = turbo.clamp_ghz(raised)

    def apply_cap(self) -> Optional[float]:
        """The frequency cap the engine should apply to LC cores."""
        return self._lc_cap_ghz


def tco_comparison(baseline_utilization: float,
                   heracles_utilization: float = 0.90,
                   idle_savings_fraction: float = 0.5,
                   model: Optional[TcoModel] = None) -> dict:
    """The §5.3 comparison: Heracles colocation vs energy proportionality.

    Returns a dict with both throughput/TCO gains, ready for the TCO
    table experiment.
    """
    model = model or TcoModel()
    return {
        "baseline_utilization": baseline_utilization,
        "heracles_gain": model.throughput_per_tco_gain(
            baseline_utilization, heracles_utilization),
        "energy_proportionality_gain": model.energy_proportionality_gain(
            baseline_utilization, idle_savings_fraction),
    }
