"""Tail-latency queueing model (M/M/k flavoured).

Latency-critical services are, to first order, queueing systems: requests
arrive, wait for a worker thread, get served, and the SLO is written
against a high percentile of the total sojourn time.  We use the classic
M/M/k results:

* Erlang-C gives the probability an arriving request must wait,
  ``P_wait = ErlangC(k, a)`` with offered load ``a = k * rho``.
* The waiting time of delayed requests is exponential, so the p-th
  percentile of waiting time is
  ``W_p = S / (k (1 - rho)) * ln(P_wait / (1 - p))`` when
  ``P_wait > 1 - p`` and zero otherwise.
* Service time has its own tail: we model the p-th percentile of service
  as ``service_tail_mult * S`` (a workload-shape parameter; ~4.6 for an
  exponential distribution, lower for tighter production services).

Past saturation (rho >= 1) the system is formally unstable; the model
extends continuously with a term proportional to the overload so that
heavier overloads report monotonically worse latency (matching the
ever-red ">300%" cells of Figure 1 rather than returning infinity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def erlang_c(servers: int, offered_erlangs: float) -> float:
    """Probability an arriving request waits (M/M/k).

    Computed with the numerically stable iterative form of the Erlang-B
    recurrence, then converted to Erlang-C.  Returns 1.0 at or beyond
    saturation.
    """
    if servers < 1:
        raise ValueError("need at least one server")
    if offered_erlangs < 0:
        raise ValueError("offered load must be non-negative")
    if offered_erlangs == 0:
        return 0.0
    rho = offered_erlangs / servers
    if rho >= 1.0:
        return 1.0
    # Erlang-B via recurrence: B(0) = 1; B(n) = a B(n-1) / (n + a B(n-1)).
    b = 1.0
    for n in range(1, servers + 1):
        b = offered_erlangs * b / (n + offered_erlangs * b)
    # Erlang-C from Erlang-B.
    c = b / (1.0 - rho + rho * b)
    return min(1.0, max(0.0, c))


@dataclass(frozen=True)
class QueueModel:
    """Tail latency of one service instance.

    Production leaf servers do not behave like one giant M/M/k: requests
    are hashed across *worker pools* (per-NUMA-node thread pools, shard
    partitions), so queueing happens at pool granularity.  With
    ``pool_size`` set, the cores are split into pools of roughly that
    size, arrivals divide evenly among pools, and the tail is computed
    per pool.  Smaller pools mean less statistical multiplexing and a
    steeper latency-vs-load curve — which is what real LC services show
    (tail grows by ~2-3x from idle to peak while CPU utilization stays
    high), in between the too-forgiving pooled M/M/k and the
    too-brutal per-core M/M/1.

    Attributes:
        servers: worker parallelism (number of cores serving requests).
        service_ms: mean service time per request on one worker.
        service_tail_mult: percentile-of-service / mean-of-service ratio.
        percentile: SLO percentile (0.99 for websearch/memkeyval, 0.95
            for ml_cluster).
        pool_size: target cores per queueing pool (None = fully pooled).
    """

    servers: int
    service_ms: float
    service_tail_mult: float = 3.0
    percentile: float = 0.99
    pool_size: Optional[int] = None

    def __post_init__(self):
        if self.servers < 1:
            raise ValueError("need at least one server")
        if self.service_ms <= 0:
            raise ValueError("service time must be positive")
        if not 0.5 <= self.percentile < 1.0:
            raise ValueError("percentile must be in [0.5, 1)")
        if self.service_tail_mult < 1.0:
            raise ValueError("service tail multiplier must be >= 1")
        if self.pool_size is not None and self.pool_size < 1:
            raise ValueError("pool size must be >= 1")

    @property
    def pools(self) -> int:
        if self.pool_size is None:
            return 1
        return max(1, round(self.servers / self.pool_size))

    @property
    def servers_per_pool(self) -> int:
        return max(1, round(self.servers / self.pools))

    def utilization(self, qps: float) -> float:
        """Offered per-server utilization rho."""
        if qps < 0:
            raise ValueError("qps must be non-negative")
        return qps * (self.service_ms / 1000.0) / self.servers

    #: Utilization at which the stable-queue formula is frozen; beyond
    #: it the (formally unstable) regime adds a linear growth term so
    #: tail latency is continuous and strictly increasing in load.
    RHO_CAP = 0.995

    def tail_latency_ms(self, qps: float) -> float:
        """p-th percentile total latency (wait + service) at ``qps``.

        Monotone non-decreasing in ``qps`` by construction: the stable
        M/M/k tail is evaluated at ``min(rho, RHO_CAP)`` and an overload
        term proportional to the excess takes over past the cap, so
        there is no discontinuity at saturation.
        """
        rho = self.utilization(qps)
        service_tail = self.service_tail_mult * self.service_ms
        if rho <= 0:
            return service_tail
        k = self.servers_per_pool
        stable_rho = min(rho, self.RHO_CAP)
        offered = stable_rho * k
        p_wait = erlang_c(k, offered)
        tail_mass = 1.0 - self.percentile
        if p_wait > tail_mass:
            wait = (self.service_ms / (k * (1.0 - stable_rho))
                    * math.log(p_wait / tail_mass))
        else:
            wait = 0.0
        overload_wait = 0.0
        if rho > self.RHO_CAP:
            # Queue grows without bound; latency rises with the excess
            # arrival rate (scaled steeply so overload reads as the
            # ">300%" regime of Fig. 1, monotone in the overload depth).
            overload_wait = (self.service_ms * k * 40.0
                             * (rho - self.RHO_CAP))
        return service_tail + wait + overload_wait

    def saturation_qps(self) -> float:
        """Arrival rate at which rho reaches 1.0."""
        return self.servers / (self.service_ms / 1000.0)


def solve_peak_qps(servers: int, service_ms: float, target_tail_ms: float,
                   service_tail_mult: float = 3.0,
                   percentile: float = 0.99,
                   pool_size: Optional[int] = None,
                   tol: float = 1e-9) -> float:
    """Find the arrival rate at which tail latency reaches the target.

    Self-calibration helper: "peak load" for an LC service is defined
    operationally as the load at which tail latency reaches (a safety
    fraction of) the SLO on the full machine.  Monotone in qps, so
    bisection.
    """
    if target_tail_ms <= 0 or service_ms <= 0:
        raise ValueError("target and service time must be positive")
    model = QueueModel(servers=servers, service_ms=service_ms,
                       service_tail_mult=service_tail_mult,
                       percentile=percentile, pool_size=pool_size)
    if model.tail_latency_ms(0.0) >= target_tail_ms:
        raise ValueError("unloaded tail already exceeds the target; "
                         "lower the unloaded fraction or tail multiplier")
    lo = 0.0
    hi = model.saturation_qps() * 0.999
    if model.tail_latency_ms(hi) < target_tail_ms:
        return hi
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if model.tail_latency_ms(mid) > target_tail_ms:
            hi = mid
        else:
            lo = mid
        if hi - lo < max(tol, 1e-12 * hi):
            break
    return (lo + hi) / 2.0


def solve_service_time_ms(servers: int, qps: float, target_tail_ms: float,
                          service_tail_mult: float = 3.0,
                          percentile: float = 0.99,
                          pool_size: Optional[int] = None,
                          tol: float = 1e-6) -> float:
    """Find the mean service time such that the model's tail latency at
    ``qps`` equals ``target_tail_ms``.  Monotone in service time, so
    bisection.  (Kept for calibration experiments; the workload profiles
    use :func:`solve_peak_qps` instead.)
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    if target_tail_ms <= 0:
        raise ValueError("target tail must be positive")
    # Upper bound: service time that saturates (rho = 1) at this qps.
    hi = servers / (qps / 1000.0) * 0.999
    lo = hi * 1e-6

    def tail(service_ms: float) -> float:
        model = QueueModel(servers=servers, service_ms=service_ms,
                           service_tail_mult=service_tail_mult,
                           percentile=percentile, pool_size=pool_size)
        return model.tail_latency_ms(qps)

    if tail(hi) < target_tail_ms:
        return hi
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if tail(mid) > target_tail_ms:
            hi = mid
        else:
            lo = mid
        if hi - lo < tol * hi:
            break
    return (lo + hi) / 2.0
